//! The Bitcoin canister's replicated state and **Algorithm 2** (§III-C).
//!
//! The canister keeps (a) the stable UTXO set up to and including the
//! *anchor* — the newest difficulty-based δ-stable block —, (b) the tree
//! of all headers above the anchor, (c) the full blocks for those
//! headers, and (d) the queue of outbound transactions. Responses from
//! the Bitcoin adapter are folded in by Algorithm 2: validate, append,
//! advance the anchor whenever a child becomes δ-stable, and track
//! syncedness against the τ lag bound.

use std::collections::BTreeMap;

use icbtc_bitcoin::encode::{Decodable, Encodable};
use icbtc_bitcoin::hash::{sha256, Sha256};
use icbtc_bitcoin::pow::{median_time_past, retarget};
use icbtc_bitcoin::{Block, BlockHash, BlockHeader, Transaction, Txid};
use icbtc_core::stability::HeaderTree;
use icbtc_core::{GetSuccessorsRequest, GetSuccessorsResponse, IntegrationParams};
use icbtc_ic::{Meter, MeterBreakdown};

use crate::metering;
use crate::storage::{codec, StorageError};
use crate::utxoset::{SnapshotReader, UtxoSet};

/// Why a header or block from the adapter was rejected. Rejections are
/// not errors of the canister — malicious replicas may relay garbage —
/// so Algorithm 2 records and skips them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Parent header unknown.
    Orphan(BlockHash),
    /// Hash exceeds the stated target.
    BadProofOfWork,
    /// `bits` disagrees with the retarget schedule.
    BadDifficultyBits,
    /// Timestamp at or below median time past, or too far in the future.
    BadTimestamp,
    /// Block body malformed (coinbase/Merkle rules).
    MalformedBlock,
    /// Predecessor block body unavailable.
    MissingPredecessorBlock(BlockHash),
    /// Header is at or below the anchor height (already finalized).
    BelowAnchor,
}

/// Statistics from one [`BitcoinCanisterState::process_response`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Blocks accepted and stored.
    pub blocks_accepted: usize,
    /// Headers (from `next`) accepted into the tree.
    pub headers_accepted: usize,
    /// Items rejected, with reasons.
    pub rejected: Vec<RejectReason>,
    /// Blocks that became stable and were folded into the UTXO set.
    pub stabilized: Vec<BlockHash>,
    /// The response was byte-identical (same tip, same block and header
    /// hashes) to the most recently applied one and was dropped without
    /// re-applying — the idempotence guard a restarted replica relies on
    /// when the adapter re-delivers the last response after catch-up.
    pub duplicate_dropped: bool,
}

/// The replicated state of the Bitcoin canister.
///
/// # Examples
///
/// ```
/// use icbtc_canister::state::BitcoinCanisterState;
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::Network;
///
/// let state = BitcoinCanisterState::new(IntegrationParams::for_network(Network::Regtest));
/// assert_eq!(state.anchor_height(), 0);
/// assert!(state.is_synced());
/// ```
#[derive(Debug, Clone)]
pub struct BitcoinCanisterState {
    params: IntegrationParams,
    utxos: UtxoSet,
    /// The single stable header per height, genesis first (kept forever,
    /// as the paper specifies).
    stable_headers: Vec<BlockHeader>,
    /// Header tree rooted at the anchor (the anchor plus all unstable
    /// headers).
    tree: HeaderTree,
    /// Bodies of unstable blocks, keyed by header hash.
    blocks: BTreeMap<BlockHash, Block>,
    /// Outbound transactions awaiting the next adapter request.
    outbound: Vec<Transaction>,
    synced: bool,
    /// Cumulative ingestion breakdown (Figure 6's split).
    ingestion_breakdown: MeterBreakdown,
    /// Total blocks folded into the stable set.
    blocks_stabilized: u64,
    /// The best-chain tip after the last non-empty adapter response was
    /// applied, paired with that response's content fingerprint.
    /// Replicated state: every replica must agree on whether a
    /// redelivered response is a duplicate.
    last_response_fingerprint: Option<(BlockHash, [u8; 32])>,
}

impl BitcoinCanisterState {
    /// Creates the state anchored at the network's genesis block, whose
    /// outputs seed the stable UTXO set.
    pub fn new(params: IntegrationParams) -> BitcoinCanisterState {
        let genesis = params.network.genesis_block().clone();
        let mut utxos = UtxoSet::new(params.network);
        let mut meter = Meter::new();
        let mut breakdown = MeterBreakdown::new();
        utxos.ingest_block(&genesis.txdata, 0, &mut meter, &mut breakdown);
        BitcoinCanisterState {
            params,
            utxos,
            stable_headers: vec![genesis.header],
            tree: HeaderTree::new(genesis.header),
            blocks: BTreeMap::new(),
            outbound: Vec::new(),
            synced: true,
            ingestion_breakdown: breakdown,
            blocks_stabilized: 1,
            last_response_fingerprint: None,
        }
    }

    /// The integration parameters in force.
    pub fn params(&self) -> &IntegrationParams {
        &self.params
    }

    /// The anchor header `β*` — the newest stable header.
    pub fn anchor(&self) -> BlockHeader {
        *self.stable_headers.last().expect("genesis always present") // icbtc-lint: allow(no-panic) -- invariant: `new` seeds stable_headers with genesis and nothing pops it
    }

    /// Height of the anchor.
    pub fn anchor_height(&self) -> u64 {
        self.stable_headers.len() as u64 - 1
    }

    /// Read access to the stable UTXO set.
    pub fn utxos(&self) -> &UtxoSet {
        &self.utxos
    }

    /// The unstable header tree (rooted at the anchor).
    pub fn tree(&self) -> &HeaderTree {
        &self.tree
    }

    /// The unstable block body for `hash`, if held.
    pub fn block(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// Number of unstable block bodies held.
    pub fn unstable_block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total blocks ever folded into the stable set (including genesis).
    pub fn blocks_stabilized(&self) -> u64 {
        self.blocks_stabilized
    }

    /// Whether the canister considers itself synced (§III-C: the maximum
    /// known header height exceeds the maximum height with an available
    /// block by at most τ). When `false`, all API requests are answered
    /// with errors.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// The cumulative output-insertion / input-removal instruction split
    /// (Figure 6, right).
    pub fn ingestion_breakdown(&self) -> &MeterBreakdown {
        &self.ingestion_breakdown
    }

    /// Queues a transaction for transmission via the next adapter request.
    pub fn queue_transaction(&mut self, tx: Transaction) -> Txid {
        let txid = tx.txid();
        self.outbound.push(tx);
        txid
    }

    /// Number of queued outbound transactions.
    pub fn outbound_len(&self) -> usize {
        self.outbound.len()
    }

    /// Builds the periodic request to the adapter: the anchor `β*`, the
    /// processed set `A`, and the outbound transactions `T` (drained).
    pub fn make_request(&mut self) -> GetSuccessorsRequest {
        let processed = self
            .tree
            .hashes()
            .filter(|h| **h != self.tree.root() && self.blocks.contains_key(h))
            .copied()
            .collect();
        GetSuccessorsRequest {
            anchor: self.anchor(),
            anchor_height: self.anchor_height(),
            processed,
            transactions: std::mem::take(&mut self.outbound),
        }
    }

    /// The header at an absolute height on the canonical path: the stable
    /// chain below the anchor, the best unstable chain above it.
    pub fn header_at_height(&self, height: u64) -> Option<BlockHeader> {
        if height <= self.anchor_height() {
            return self.stable_headers.get(height as usize).copied();
        }
        let best = self.tree.best_chain();
        let offset = (height - self.anchor_height()) as usize;
        best.get(offset).and_then(|h| self.tree.header(h))
    }

    /// The tip of the current best chain (the chain maximizing `d_w`).
    pub fn best_tip(&self) -> (BlockHash, u64) {
        let best = self.tree.best_chain();
        let tip = *best.last().expect("anchor always present"); // icbtc-lint: allow(no-panic) -- invariant: best_chain always contains at least the tree root (the anchor)
        (tip, self.anchor_height() + best.len() as u64 - 1)
    }

    /// The deepest height on the best chain for which the block body is
    /// available — what `get_utxos`/`get_balance` can actually see. Lags
    /// [`BitcoinCanisterState::best_tip`] by at most τ while synced.
    pub fn available_tip_height(&self) -> u64 {
        let best = self.tree.best_chain();
        let mut height = self.anchor_height();
        for (i, hash) in best.iter().enumerate().skip(1) {
            if self.blocks.contains_key(hash) {
                height = self.anchor_height() + i as u64;
            } else {
                break;
            }
        }
        height
    }

    // -----------------------------------------------------------------
    // Validation (the same checks the adapter performs, §III-B/§III-C)
    // -----------------------------------------------------------------

    fn validate_header(
        &self,
        header: &BlockHeader,
        now_unix: u32,
        meter: &mut Meter,
    ) -> Result<(), RejectReason> {
        let prev = header.prev_blockhash;
        if !self.tree.contains(&prev) {
            // Headers below the anchor cannot extend anything.
            if self.stable_headers.iter().any(|h| h.block_hash() == prev) {
                return Err(RejectReason::BelowAnchor);
            }
            return Err(RejectReason::Orphan(prev));
        }
        let expected = self.expected_bits(&prev, meter);
        if header.bits != expected {
            return Err(RejectReason::BadDifficultyBits);
        }
        if !header.meets_pow_target() {
            return Err(RejectReason::BadProofOfWork);
        }
        let mtp = self.median_time_past(&prev, meter);
        if header.time <= mtp || header.time > now_unix.saturating_add(2 * 60 * 60) {
            return Err(RejectReason::BadTimestamp);
        }
        Ok(())
    }

    /// Walks up to `count` ancestors of `hash` (inclusive), newest last,
    /// crossing from the tree into the stable chain as needed.
    fn ancestor_headers(&self, hash: &BlockHash, count: usize, meter: &mut Meter) -> Vec<BlockHeader> {
        let mut rev = Vec::with_capacity(count);
        let mut cursor = *hash;
        while rev.len() < count {
            meter.charge(metering::HEADER_WALK);
            if let Some(header) = self.tree.header(&cursor) {
                let height = self.tree.height(&cursor).expect("header in tree"); // icbtc-lint: allow(no-panic) -- invariant: cursor was just returned by tree.header on the line above
                rev.push(header);
                if height == 0 {
                    break;
                }
                if cursor == self.tree.root() {
                    // Continue below the anchor on the stable chain.
                    let mut h = height;
                    while rev.len() < count && h > 0 {
                        h -= 1;
                        meter.charge(metering::HEADER_WALK);
                        rev.push(self.stable_headers[h as usize]);
                    }
                    break;
                }
                cursor = header.prev_blockhash;
            } else {
                break;
            }
        }
        rev.reverse();
        rev
    }

    fn expected_bits(&self, prev: &BlockHash, meter: &mut Meter) -> icbtc_bitcoin::CompactTarget {
        let params = self.params.network.params();
        let prev_header = self.tree.header(prev).expect("validated parent"); // icbtc-lint: allow(no-panic) -- invariant: caller checked tree.contains(prev) in validate_header
        let prev_height = self.tree.height(prev).expect("validated parent");
        let next_height = prev_height + 1;
        if !next_height.is_multiple_of(params.retarget_interval as u64) {
            return prev_header.bits;
        }
        let span = self.ancestor_headers(prev, params.retarget_interval as usize, meter);
        let first = span.first().expect("non-empty ancestry"); // icbtc-lint: allow(no-panic) -- invariant: ancestor_headers always returns at least `prev` itself
        let actual = prev_header.time.saturating_sub(first.time) as u64;
        retarget(prev_header.bits, actual.max(1), params.expected_timespan_secs(), params.pow_limit)
    }

    fn median_time_past(&self, hash: &BlockHash, meter: &mut Meter) -> u32 {
        let window = self.ancestor_headers(hash, 11, meter);
        median_time_past(&window.iter().map(|h| h.time).collect::<Vec<_>>())
    }

    fn block_valid(&self, block: &Block) -> Result<(), RejectReason> {
        if !block.is_well_formed() {
            return Err(RejectReason::MalformedBlock);
        }
        let prev = block.header.prev_blockhash;
        let prev_available = prev == self.tree.root() || self.blocks.contains_key(&prev);
        if !prev_available {
            return Err(RejectReason::MissingPredecessorBlock(prev));
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Algorithm 2
    // -----------------------------------------------------------------

    /// Deterministic content fingerprint of a non-empty adapter
    /// response: SHA-256d over the block hashes and the upcoming-header
    /// hashes. `None` for the empty response, which carries no state
    /// transition to deduplicate. The probe is metered so the dedup
    /// check itself is replicated work.
    fn response_fingerprint(
        &self,
        response: &GetSuccessorsResponse,
        meter: &mut Meter,
    ) -> Option<[u8; 32]> {
        if response.blocks.is_empty() && response.next.is_empty() {
            return None;
        }
        meter.charge(metering::INGEST_DEDUP_PROBE);
        let mut hasher = Sha256::new();
        hasher.update(&(response.blocks.len() as u64).to_be_bytes());
        for block in &response.blocks {
            meter.charge(metering::INGEST_DEDUP_PER_ITEM);
            hasher.update(&block.block_hash().0);
        }
        for header in &response.next {
            meter.charge(metering::INGEST_DEDUP_PER_ITEM);
            hasher.update(&header.block_hash().0);
        }
        Some(sha256(&hasher.finalize()))
    }

    /// Processes an adapter response `(B, N)` per **Algorithm 2**:
    /// validates and stores each block, advances the anchor while any
    /// child of it is difficulty-based δ-stable (folding stabilized
    /// blocks into the UTXO set and pruning defeated forks), appends the
    /// upcoming headers, and recomputes the synced flag.
    pub fn process_response(
        &mut self,
        response: GetSuccessorsResponse,
        now_unix: u32,
        meter: &mut Meter,
    ) -> IngestReport {
        let mut report = IngestReport::default();
        // Idempotence guard: a response identical to the most recently
        // applied one *at the same tip* is dropped as a metered no-op.
        // Without this, an adapter re-delivering the last response after
        // a replica restart (or a replayed post-checkpoint ingest log
        // running one entry past the live state) would double-charge the
        // per-transaction parse costs for every duplicate block.
        let probe = meter.frame("dedup_probe");
        let fingerprint = self.response_fingerprint(&response, meter);
        meter.frame_end(probe);
        if let Some(content) = fingerprint {
            let (tip, _) = self.best_tip();
            if self.last_response_fingerprint == Some((tip, content)) {
                report.duplicate_dropped = true;
                return report;
            }
        }
        for block in response.blocks {
            let hash = block.block_hash();
            let validate = meter.frame("header_validate");
            meter.charge(metering::VALIDATE_HEADER);
            if !self.tree.contains(&hash) {
                if let Err(reason) = self.validate_header(&block.header, now_unix, meter) {
                    meter.frame_end(validate);
                    report.rejected.push(reason);
                    continue;
                }
            }
            meter.frame_end(validate);
            if let Err(reason) = self.block_valid(&block) {
                report.rejected.push(reason);
                continue;
            }
            // PARSE_TX = TX_HASHING + TX_DECODE, charged at the same site
            // as the old flat per-transaction constant, split into the two
            // frames so the profiler can attribute the parts.
            let hashing = meter.frame("hashing");
            meter.charge(block.txdata.len() as u64 * metering::TX_HASHING);
            meter.frame_end(hashing);
            let decode = meter.frame("tx_decode");
            meter.charge(block.txdata.len() as u64 * metering::TX_DECODE);
            meter.frame_end(decode);
            let _ = self.tree.insert(block.header);
            if self.blocks.insert(hash, block).is_none() {
                report.blocks_accepted += 1;
            }
            self.advance_anchor(&mut report, meter);
        }

        for header in response.next {
            let hash = header.block_hash();
            let validate = meter.frame("header_validate");
            meter.charge(metering::VALIDATE_HEADER);
            if self.tree.contains(&hash) {
                meter.frame_end(validate);
                continue;
            }
            match self.validate_header(&header, now_unix, meter) {
                Ok(()) => {
                    let _ = self.tree.insert(header);
                    report.headers_accepted += 1;
                }
                Err(reason) => report.rejected.push(reason),
            }
            meter.frame_end(validate);
        }

        if let Some(content) = fingerprint {
            // Keyed at the *post-apply* tip: a redelivered copy of this
            // response arrives when the live tip is exactly this one.
            let (tip, _) = self.best_tip();
            self.last_response_fingerprint = Some((tip, content));
        }
        self.update_synced();
        report
    }

    /// Advances the anchor while the work-heaviest child with an
    /// available body is difficulty-based δ-stable with respect to the
    /// current anchor's work.
    fn advance_anchor(&mut self, report: &mut IngestReport, meter: &mut Meter) {
        loop {
            let anchor_hash = self.tree.root();
            let anchor_work = self.tree.header(&anchor_hash).expect("anchor in tree").work(); // icbtc-lint: allow(no-panic) -- invariant: the root hash is by construction a member of the tree
            // Among children with available bodies, the d_w-maximal one.
            let candidate = self
                .tree
                .children(&anchor_hash)
                .iter()
                .filter(|h| self.blocks.contains_key(h))
                .max_by(|a, b| {
                    let da = self.tree.depth_work(a).expect("in tree"); // icbtc-lint: allow(no-panic) -- invariant: children() only yields members of the tree
                    let db = self.tree.depth_work(b).expect("in tree");
                    da.cmp(&db)
                })
                .copied();
            let Some(next_hash) = candidate else { return };
            if !self.tree.is_difficulty_stable(&next_hash, self.params.stability_delta, anchor_work)
            {
                return;
            }
            // Fold the stabilized block into the UTXO set and discard its
            // body; keep exactly its header at this height.
            let block = self.blocks.remove(&next_hash).expect("candidate has body"); // icbtc-lint: allow(no-panic) -- invariant: candidate was filtered on blocks.contains_key four lines up
            let mut breakdown = MeterBreakdown::new();
            let height = self.anchor_height() + 1;
            let ingest = meter.frame("ingest_block");
            self.utxos.ingest_block(&block.txdata, height, meter, &mut breakdown);
            meter.frame_end(ingest);
            for (label, value) in breakdown.entries() {
                self.ingestion_breakdown.add(label, *value);
            }
            self.stable_headers.push(block.header);
            self.blocks_stabilized += 1;
            report.stabilized.push(next_hash);
            // Prune every branch not passing through the new anchor.
            for removed in self.tree.reroot(next_hash) {
                self.blocks.remove(&removed);
            }
        }
    }

    fn update_synced(&mut self) {
        let max_header_height = self.anchor_height() + (self.tree.max_height() - self.tree.root_height());
        let max_block_height = self
            .tree
            .hashes()
            .filter(|h| **h == self.tree.root() || self.blocks.contains_key(h))
            .filter_map(|h| self.tree.height(h))
            .max()
            .unwrap_or(self.tree.root_height());
        let max_block_height = self.anchor_height() + (max_block_height - self.tree.root_height());
        self.synced = max_header_height.saturating_sub(max_block_height) <= self.params.tau;
    }

    /// Marks the canister out of sync manually (downtime experiments).
    pub fn force_unsynced(&mut self) {
        self.synced = false;
    }

    /// Installs a pre-built state snapshot, as a canister
    /// (re)installation would: the stable UTXO set and the matching
    /// stable header chain. The anchor becomes the last header; the
    /// unstable region is reset. Used by the benchmark harness to load
    /// large workloads without replaying block-by-block sync.
    ///
    /// # Panics
    ///
    /// Panics unless `stable_headers` is non-empty, chains correctly
    /// (each header's `prev` is its predecessor's hash), and its length
    /// equals the UTXO set's `next_height`.
    pub fn install_snapshot(&mut self, utxos: UtxoSet, stable_headers: Vec<BlockHeader>) {
        assert!(!stable_headers.is_empty(), "snapshot needs at least the genesis header");
        assert_eq!(
            stable_headers.len() as u64,
            utxos.next_height(),
            "one stable header per ingested height"
        );
        for pair in stable_headers.windows(2) {
            assert_eq!(
                pair[1].prev_blockhash,
                pair[0].block_hash(),
                "stable headers must chain"
            );
        }
        let anchor = *stable_headers.last().expect("non-empty"); // icbtc-lint: allow(no-panic) -- guarded by the is_empty assert above; panics are this API's documented contract
        let anchor_height = stable_headers.len() as u64 - 1;
        self.utxos = utxos;
        self.stable_headers = stable_headers;
        self.tree = HeaderTree::with_root_height(anchor, anchor_height);
        self.blocks.clear();
        self.blocks_stabilized = anchor_height + 1;
        self.synced = true;
    }

    // -----------------------------------------------------------------
    // Full-state snapshot envelope (checkpoints & upgrades)
    // -----------------------------------------------------------------

    /// Streams the canonical full-state snapshot into `sink`: magic,
    /// version, the integration parameters, the UTXO-set snapshot, the
    /// stable header chain, the unstable header tree, the unstable block
    /// bodies, the outbound queue, and the bookkeeping scalars. The same
    /// byte stream backs [`BitcoinCanisterState::serialize`] and the
    /// streamed [`BitcoinCanisterState::state_hash`], so the hash
    /// commits to exactly what a restore rebuilds.
    fn snapshot_into(&self, sink: &mut dyn FnMut(&[u8])) {
        sink(STATE_MAGIC);
        sink(&STATE_VERSION.to_be_bytes());
        sink(&[codec::network_tag(self.params.network)]);
        sink(&self.params.stability_delta.to_be_bytes());
        sink(&self.params.tau.to_be_bytes());
        sink(&(self.params.connections as u64).to_be_bytes());
        sink(&(self.params.addr_low_watermark as u64).to_be_bytes());
        sink(&(self.params.addr_high_watermark as u64).to_be_bytes());
        sink(&self.params.bulk_sync_height.to_be_bytes());
        sink(&self.params.tx_cache_expiry_secs.to_be_bytes());
        let utxo_bytes = self.utxos.serialize();
        sink(&(utxo_bytes.len() as u64).to_be_bytes());
        sink(&utxo_bytes);
        sink(&(self.stable_headers.len() as u64).to_be_bytes());
        for header in &self.stable_headers {
            sink(&header.encode_to_vec());
        }
        // Unstable headers, excluding the root (the anchor is already the
        // last stable header), sorted by (height, hash) so parents
        // precede children and a restore can reinsert in stream order.
        let mut unstable: Vec<(u64, BlockHash)> = self
            .tree
            .hashes()
            .filter(|h| **h != self.tree.root())
            .map(|h| {
                let height = self.tree.height(h).expect("hash from tree"); // icbtc-lint: allow(no-panic) -- invariant: h was just yielded by tree.hashes()
                (height, *h)
            })
            .collect();
        unstable.sort();
        sink(&(unstable.len() as u64).to_be_bytes());
        for (_, hash) in &unstable {
            let header = self.tree.header(hash).expect("hash from tree"); // icbtc-lint: allow(no-panic) -- invariant: hash was collected from tree.hashes() above
            sink(&header.encode_to_vec());
        }
        sink(&(self.blocks.len() as u64).to_be_bytes());
        for block in self.blocks.values() {
            let bytes = block.encode_to_vec();
            sink(&(bytes.len() as u64).to_be_bytes());
            sink(&bytes);
        }
        sink(&(self.outbound.len() as u64).to_be_bytes());
        for tx in &self.outbound {
            let bytes = tx.encode_to_vec();
            sink(&(bytes.len() as u64).to_be_bytes());
            sink(&bytes);
        }
        sink(&[self.synced as u8]);
        let entries = self.ingestion_breakdown.entries();
        sink(&(entries.len() as u64).to_be_bytes());
        for (label, value) in entries {
            sink(&(label.len() as u16).to_be_bytes());
            sink(label.as_bytes());
            sink(&value.to_be_bytes());
        }
        sink(&self.blocks_stabilized.to_be_bytes());
        match &self.last_response_fingerprint {
            None => sink(&[0u8]),
            Some((tip, content)) => {
                sink(&[1u8]);
                sink(&tip.0);
                sink(content);
            }
        }
    }

    /// The full-state snapshot as one contiguous buffer — what a canister
    /// upgrade writes to stable memory in `pre_upgrade`.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_into(&mut |bytes| out.extend_from_slice(bytes));
        out
    }

    /// Composite SHA-256d over the snapshot stream, computed without
    /// materializing the buffer. Two states are behaviorally identical
    /// for every replicated API iff their hashes match, which is what the
    /// shadow-replica divergence detector compares every round.
    pub fn state_hash(&self) -> [u8; 32] {
        let mut hasher = Sha256::new();
        self.snapshot_into(&mut |bytes| hasher.update(bytes));
        sha256(&hasher.finalize())
    }

    /// Rebuilds a state from [`BitcoinCanisterState::serialize`] bytes,
    /// validating every structural invariant a live state maintains.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] on a bad magic/version/network tag, a
    /// stable chain that is empty, does not link, or disagrees with the
    /// UTXO set's height, an unstable header without its parent, a block
    /// body without its header, or trailing bytes.
    pub fn deserialize(bytes: &[u8]) -> Result<BitcoinCanisterState, StorageError> {
        let mut cursor = SnapshotReader { bytes, pos: 0 };
        if cursor.take(8)? != STATE_MAGIC {
            return Err(StorageError::Corrupt("bad state magic"));
        }
        if cursor.u16()? != STATE_VERSION {
            return Err(StorageError::Corrupt("unsupported state snapshot version"));
        }
        let network = codec::network_from_tag(cursor.u8()?)?;
        let mut params = IntegrationParams::for_network(network);
        params.stability_delta = cursor.u64()?;
        params.tau = cursor.u64()?;
        params.connections = cursor.u64()? as usize;
        params.addr_low_watermark = cursor.u64()? as usize;
        params.addr_high_watermark = cursor.u64()? as usize;
        params.bulk_sync_height = cursor.u64()?;
        params.tx_cache_expiry_secs = cursor.u64()?;
        let utxo_len = cursor.u64()? as usize;
        let utxos = UtxoSet::deserialize(cursor.take(utxo_len)?)?;
        if utxos.network() != network {
            return Err(StorageError::Corrupt("utxo snapshot network mismatch"));
        }
        let stable_count = cursor.u64()? as usize;
        if stable_count == 0 {
            return Err(StorageError::Corrupt("empty stable chain"));
        }
        if stable_count as u64 != utxos.next_height() {
            return Err(StorageError::Corrupt("stable chain length disagrees with utxo height"));
        }
        let mut stable_headers: Vec<BlockHeader> = Vec::new();
        for _ in 0..stable_count {
            let header = BlockHeader::decode_exact(cursor.take(80)?)
                .map_err(|_| StorageError::Corrupt("bad stable header"))?;
            if let Some(prev) = stable_headers.last() {
                if header.prev_blockhash != prev.block_hash() {
                    return Err(StorageError::Corrupt("stable headers do not chain"));
                }
            }
            stable_headers.push(header);
        }
        let anchor = *stable_headers.last().expect("non-empty"); // icbtc-lint: allow(no-panic) -- guarded by the stable_count == 0 check above
        let anchor_height = stable_count as u64 - 1;
        let mut tree = HeaderTree::with_root_height(anchor, anchor_height);
        let unstable_count = cursor.u64()? as usize;
        for _ in 0..unstable_count {
            let header = BlockHeader::decode_exact(cursor.take(80)?)
                .map_err(|_| StorageError::Corrupt("bad unstable header"))?;
            if tree.insert(header).is_err() {
                return Err(StorageError::Corrupt("orphan unstable header"));
            }
        }
        let block_count = cursor.u64()? as usize;
        let mut blocks = BTreeMap::new();
        for _ in 0..block_count {
            let len = cursor.u64()? as usize;
            let block = Block::decode_exact(cursor.take(len)?)
                .map_err(|_| StorageError::Corrupt("bad unstable block"))?;
            let hash = block.block_hash();
            if !tree.contains(&hash) || hash == tree.root() {
                return Err(StorageError::Corrupt("block body without unstable header"));
            }
            blocks.insert(hash, block);
        }
        let outbound_count = cursor.u64()? as usize;
        let mut outbound: Vec<Transaction> = Vec::new();
        for _ in 0..outbound_count {
            let len = cursor.u64()? as usize;
            let tx = Transaction::decode_exact(cursor.take(len)?)
                .map_err(|_| StorageError::Corrupt("bad outbound transaction"))?;
            outbound.push(tx);
        }
        let synced = match cursor.u8()? {
            0 => false,
            1 => true,
            _ => return Err(StorageError::Corrupt("bad synced flag")),
        };
        let breakdown_count = cursor.u64()? as usize;
        let mut ingestion_breakdown = MeterBreakdown::new();
        for _ in 0..breakdown_count {
            let label_len = cursor.u16()? as usize;
            let label = static_breakdown_label(cursor.take(label_len)?)?;
            ingestion_breakdown.add(label, cursor.u64()?);
        }
        let blocks_stabilized = cursor.u64()?;
        if blocks_stabilized != anchor_height + 1 {
            return Err(StorageError::Corrupt("blocks_stabilized disagrees with anchor height"));
        }
        let last_response_fingerprint = match cursor.u8()? {
            0 => None,
            1 => {
                let mut tip = [0u8; 32];
                tip.copy_from_slice(cursor.take(32)?);
                let mut content = [0u8; 32];
                content.copy_from_slice(cursor.take(32)?);
                Some((BlockHash(tip), content))
            }
            _ => return Err(StorageError::Corrupt("bad fingerprint tag")),
        };
        if cursor.pos != bytes.len() {
            return Err(StorageError::Corrupt("trailing bytes in state snapshot"));
        }
        Ok(BitcoinCanisterState {
            params,
            utxos,
            stable_headers,
            tree,
            blocks,
            outbound,
            synced,
            ingestion_breakdown,
            blocks_stabilized,
            last_response_fingerprint,
        })
    }
}

/// Magic prefix of the full-state snapshot envelope.
const STATE_MAGIC: &[u8; 8] = b"ICBTCSTA";
/// Bumped on any layout change; restores reject other versions.
const STATE_VERSION: u16 = 1;

/// Maps a serialized breakdown label back to the `'static` string
/// [`MeterBreakdown::add`] requires. Only labels the ingestion path
/// actually emits are representable; anything else is corruption.
fn static_breakdown_label(label: &[u8]) -> Result<&'static str, StorageError> {
    match label {
        b"output_insertion" => Ok("output_insertion"),
        b"input_removal" => Ok("input_removal"),
        _ => Err(StorageError::Corrupt("unknown breakdown label")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{Network, Script};
    use icbtc_btcnet::miner::mine_block_on;
    use icbtc_btcnet::ChainStore;

    const NOW: u32 = 2_000_000_000;

    fn params() -> IntegrationParams {
        IntegrationParams::for_network(Network::Regtest).with_stability_delta(2)
    }

    /// Mines `n` blocks on a reference chain and returns them.
    fn mine_chain(chain: &mut ChainStore, n: usize, salt: u64) -> Vec<Block> {
        let mut out = Vec::new();
        for i in 0..n {
            let block = mine_block_on(
                chain,
                chain.tip_hash(),
                Vec::new(),
                Script::new_p2wpkh(&[i as u8; 20]),
                salt + i as u64,
            );
            chain.accept_block(block.clone(), NOW).unwrap();
            out.push(block);
        }
        out
    }

    fn respond_with(blocks: &[Block]) -> GetSuccessorsResponse {
        GetSuccessorsResponse { blocks: blocks.to_vec(), next: Vec::new() }
    }

    #[test]
    fn initial_state_is_genesis_anchored() {
        let state = BitcoinCanisterState::new(params());
        assert_eq!(state.anchor_height(), 0);
        assert_eq!(state.anchor(), Network::Regtest.genesis_block().header);
        // The simulated genesis coinbase pays OP_RETURN (unspendable, as
        // Bitcoin's real genesis output effectively is), so nothing lands
        // in the UTXO set.
        assert_eq!(state.utxos().len(), 0);
        assert_eq!(state.utxos().next_height(), 1);
        assert_eq!(state.unstable_block_count(), 0);
        let (tip, height) = state.best_tip();
        assert_eq!(height, 0);
        assert_eq!(tip, Network::Regtest.genesis_hash());
    }

    #[test]
    fn blocks_accumulate_and_anchor_advances_at_delta() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 6, 0);
        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();

        // Feed the first two blocks: nothing stable yet at δ = 2
        // (block 1 has depth 2 but needs d_w/w ≥ 2... it is exactly 2).
        let report = state.process_response(respond_with(&blocks[..1]), NOW, &mut meter);
        assert_eq!(report.blocks_accepted, 1);
        assert!(report.stabilized.is_empty());
        assert_eq!(state.anchor_height(), 0);

        // Feeding the rest advances the anchor: with 6 blocks and δ = 2,
        // blocks 1..=4 become stable (block at height h is stable once
        // depth ≥ 2, i.e. there is a block at h+1).
        let report = state.process_response(respond_with(&blocks[1..]), NOW, &mut meter);
        assert_eq!(report.blocks_accepted, 5);
        assert_eq!(state.anchor_height(), 5);
        assert_eq!(report.stabilized.len(), 5);
        // The unstable region holds the remaining tip block.
        assert_eq!(state.unstable_block_count(), 1);
        assert!(meter.instructions() > 0);
        // Stable UTXO set includes the stabilized coinbases.
        assert_eq!(state.utxos().next_height(), 6);
    }

    #[test]
    fn rejects_invalid_blocks() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 2, 0);
        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();

        // Orphan: skip ahead.
        let report = state.process_response(respond_with(&blocks[1..2]), NOW, &mut meter);
        assert_eq!(report.blocks_accepted, 0);
        assert!(matches!(report.rejected[0], RejectReason::Orphan(_)));

        // Malformed body.
        let mut bad = blocks[0].clone();
        bad.txdata.clear();
        let report = state.process_response(respond_with(&[bad]), NOW, &mut meter);
        assert_eq!(report.rejected, vec![RejectReason::MalformedBlock]);

        // Bad PoW.
        let mut tampered = blocks[0].clone();
        for delta in 1..1000 {
            tampered.header.nonce = blocks[0].header.nonce.wrapping_add(delta);
            if !tampered.header.meets_pow_target() {
                break;
            }
        }
        let report = state.process_response(respond_with(&[tampered]), NOW, &mut meter);
        assert_eq!(report.rejected, vec![RejectReason::BadProofOfWork]);

        // Timestamp too far in the future.
        let future_chain_now = blocks[0].header.time.saturating_sub(3 * 60 * 60);
        let report = state.process_response(respond_with(&blocks[..1]), future_chain_now, &mut meter);
        assert_eq!(report.rejected, vec![RejectReason::BadTimestamp]);
    }

    #[test]
    fn transaction_validity_is_not_checked() {
        // §III-C: the canister deliberately skips spend validation.
        let mut chain = ChainStore::new(Network::Regtest);
        let bogus_spend = Transaction {
            version: 2,
            inputs: vec![icbtc_bitcoin::TxIn::new(icbtc_bitcoin::OutPoint::new(
                Txid([0xab; 32]),
                7,
            ))],
            outputs: vec![icbtc_bitcoin::TxOut::new(
                icbtc_bitcoin::Amount::from_sat(123),
                Script::new_p2wpkh(&[0xcd; 20]),
            )],
            lock_time: 0,
        };
        let block = mine_block_on(
            &chain,
            chain.tip_hash(),
            vec![bogus_spend],
            Script::new_p2wpkh(&[1; 20]),
            0,
        );
        chain.accept_block(block.clone(), NOW).unwrap();
        let mut state = BitcoinCanisterState::new(params());
        let report = state.process_response(respond_with(&[block]), NOW, &mut Meter::new());
        assert_eq!(report.blocks_accepted, 1);
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn fork_resolution_follows_work_and_prunes_on_stability() {
        let mut chain = ChainStore::new(Network::Regtest);
        let main = mine_chain(&mut chain, 3, 0);
        // A one-block fork off genesis.
        let mut fork_chain = ChainStore::new(Network::Regtest);
        let fork = mine_chain(&mut fork_chain, 1, 100);

        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();
        state.process_response(respond_with(&fork), NOW, &mut meter);
        state.process_response(respond_with(&main[..1]), NOW, &mut meter);
        // Two children of the anchor: neither is δ-stable (equal work).
        assert_eq!(state.anchor_height(), 0);
        assert_eq!(state.unstable_block_count(), 2);

        // Extend the main branch until it wins by δ = 2.
        state.process_response(respond_with(&main[1..]), NOW, &mut meter);
        assert!(state.anchor_height() >= 1, "main branch must stabilize");
        // The fork's block was pruned with its branch.
        assert!(state.block(&fork[0].block_hash()).is_none());
        assert!(!state.tree().contains(&fork[0].block_hash()));
    }

    #[test]
    fn make_request_carries_anchor_processed_and_transactions() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 2, 0);
        let mut state = BitcoinCanisterState::new(params());
        state.process_response(respond_with(&blocks[..1]), NOW, &mut Meter::new());
        let tx = Transaction::default();
        state.queue_transaction(tx.clone());
        assert_eq!(state.outbound_len(), 1);

        let request = state.make_request();
        assert_eq!(request.anchor, state.anchor());
        assert_eq!(request.anchor_height, 0);
        assert_eq!(request.processed, vec![blocks[0].block_hash()]);
        assert_eq!(request.transactions, vec![tx]);
        // Drained.
        assert_eq!(state.outbound_len(), 0);
        assert!(state.make_request().transactions.is_empty());
    }

    #[test]
    fn synced_flag_follows_tau() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 6, 0);
        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();
        assert!(state.is_synced());

        // Learn 6 headers but only 1 block: lag 5 > τ = 2 ⇒ unsynced.
        let response = GetSuccessorsResponse {
            blocks: blocks[..1].to_vec(),
            next: blocks[1..].iter().map(|b| b.header).collect(),
        };
        state.process_response(response, NOW, &mut meter);
        assert!(!state.is_synced());

        // Deliver the remaining blocks: synced again.
        state.process_response(respond_with(&blocks[1..]), NOW, &mut meter);
        assert!(state.is_synced());
    }

    #[test]
    fn header_at_height_spans_stable_and_unstable() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 5, 0);
        let mut state = BitcoinCanisterState::new(params());
        state.process_response(respond_with(&blocks), NOW, &mut Meter::new());
        assert!(state.anchor_height() >= 3);
        // Every height up to the tip resolves and matches the mined chain.
        for (i, block) in blocks.iter().enumerate() {
            let header = state.header_at_height(i as u64 + 1).unwrap();
            assert_eq!(header.block_hash(), block.block_hash(), "height {}", i + 1);
        }
        assert_eq!(state.header_at_height(99), None);
        let (_, tip_height) = state.best_tip();
        assert_eq!(tip_height, 5);
    }

    #[test]
    fn ingestion_breakdown_accumulates() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 4, 0);
        let mut state = BitcoinCanisterState::new(params());
        let before = state.ingestion_breakdown().get("output_insertion");
        state.process_response(respond_with(&blocks), NOW, &mut Meter::new());
        assert!(state.ingestion_breakdown().get("output_insertion") > before);
    }

    #[test]
    fn duplicate_blocks_are_idempotent() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 1, 0);
        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();
        let first = state.process_response(respond_with(&blocks), NOW, &mut meter);
        let hash_after_first = state.state_hash();
        let second = state.process_response(respond_with(&blocks), NOW, &mut meter);
        assert_eq!(first.blocks_accepted, 1);
        assert!(!first.duplicate_dropped);
        assert_eq!(second.blocks_accepted, 0);
        assert!(second.duplicate_dropped, "redelivered response must hit the dedup guard");
        assert_eq!(state.unstable_block_count(), 1);
        // The drop is a true no-op on replicated state.
        assert_eq!(state.state_hash(), hash_after_first);
        // A *different* response at the same tip is not a duplicate.
        let header_only = GetSuccessorsResponse {
            blocks: Vec::new(),
            next: vec![blocks[0].header],
        };
        let third = state.process_response(header_only, NOW, &mut meter);
        assert!(!third.duplicate_dropped);
    }

    #[test]
    fn duplicate_probe_is_metered() {
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 1, 0);
        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();
        state.process_response(respond_with(&blocks), NOW, &mut meter);
        meter.take();
        let report = state.process_response(respond_with(&blocks), NOW, &mut meter);
        assert!(report.duplicate_dropped);
        let spent = meter.take();
        assert_eq!(
            spent,
            metering::INGEST_DEDUP_PROBE + metering::INGEST_DEDUP_PER_ITEM,
            "a dropped duplicate still pays for its own dedup probe"
        );
        // Empty responses pay nothing extra: the guard never fires.
        let report = state.process_response(GetSuccessorsResponse::default(), NOW, &mut meter);
        assert!(!report.duplicate_dropped);
        assert_eq!(meter.take(), 0);
    }

    /// Drives a state into a representative mid-flight shape: stable
    /// progress, an unstable tree with a fork, queued transactions, and a
    /// set dedup fingerprint.
    fn populated_state() -> BitcoinCanisterState {
        let mut chain = ChainStore::new(Network::Regtest);
        let main = mine_chain(&mut chain, 6, 0);
        let mut fork_chain = ChainStore::new(Network::Regtest);
        for block in &main[..5] {
            fork_chain.accept_block(block.clone(), NOW).unwrap();
        }
        let fork = mine_chain(&mut fork_chain, 1, 500);
        let mut state = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();
        state.process_response(respond_with(&main), NOW, &mut meter);
        state.process_response(respond_with(&fork), NOW, &mut meter);
        state.queue_transaction(Transaction {
            version: 2,
            inputs: vec![icbtc_bitcoin::TxIn::new(icbtc_bitcoin::OutPoint::new(
                Txid([0x11; 32]),
                0,
            ))],
            outputs: vec![icbtc_bitcoin::TxOut::new(
                icbtc_bitcoin::Amount::from_sat(4_200),
                Script::new_p2wpkh(&[0x22; 20]),
            )],
            lock_time: 0,
        });
        state
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let state = populated_state();
        let bytes = state.serialize();
        let restored = BitcoinCanisterState::deserialize(&bytes).unwrap();
        assert_eq!(restored.serialize(), bytes);
        assert_eq!(restored.state_hash(), state.state_hash());
        // Everything observable survives.
        assert_eq!(restored.anchor_height(), state.anchor_height());
        assert_eq!(restored.best_tip(), state.best_tip());
        assert_eq!(restored.unstable_block_count(), state.unstable_block_count());
        assert_eq!(restored.outbound_len(), state.outbound_len());
        assert_eq!(restored.is_synced(), state.is_synced());
        assert_eq!(restored.blocks_stabilized(), state.blocks_stabilized());
        assert_eq!(
            restored.ingestion_breakdown().entries(),
            state.ingestion_breakdown().entries()
        );
        assert_eq!(restored.last_response_fingerprint, state.last_response_fingerprint);
    }

    #[test]
    fn state_hash_is_sha256d_of_serialization() {
        let state = populated_state();
        assert_eq!(state.state_hash(), icbtc_bitcoin::hash::sha256d(&state.serialize()));
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        // A restored state must process future responses exactly like the
        // original — including the dedup guard carried across.
        let mut chain = ChainStore::new(Network::Regtest);
        let blocks = mine_chain(&mut chain, 8, 0);
        let mut original = BitcoinCanisterState::new(params());
        let mut meter = Meter::new();
        original.process_response(respond_with(&blocks[..5]), NOW, &mut meter);
        let mut restored = BitcoinCanisterState::deserialize(&original.serialize()).unwrap();
        // The redelivered last response is a duplicate for both.
        let a = original.process_response(respond_with(&blocks[..5]), NOW, &mut meter);
        let b = restored.process_response(respond_with(&blocks[..5]), NOW, &mut meter);
        assert!(a.duplicate_dropped && b.duplicate_dropped);
        // Fresh blocks apply identically.
        original.process_response(respond_with(&blocks[5..]), NOW, &mut meter);
        restored.process_response(respond_with(&blocks[5..]), NOW, &mut meter);
        assert_eq!(original.state_hash(), restored.state_hash());
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let state = populated_state();
        let good = state.serialize();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(BitcoinCanisterState::deserialize(&bad_magic).is_err());

        let mut bad_version = good.clone();
        bad_version[9] = 0xff;
        assert!(BitcoinCanisterState::deserialize(&bad_version).is_err());

        let mut truncated = good.clone();
        truncated.pop();
        assert!(BitcoinCanisterState::deserialize(&truncated).is_err());

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(BitcoinCanisterState::deserialize(&trailing).is_err());

        assert!(BitcoinCanisterState::deserialize(&[]).is_err());
    }
}

//! The Bitcoin canister — §III-C of *"Enabling Bitcoin Smart Contracts on
//! the Internet Computer"* (ICDCS 2025).
//!
//! The canister is the paper's second core building block: the smart
//! contract that makes the Bitcoin blockchain state available on the IC.
//! It stores only the UTXO set up to the newest difficulty-based δ-stable
//! block (the *anchor*) plus the unstable blocks above it, and exposes
//! `get_utxos` / `get_balance` / `send_transaction` to other canisters.
//!
//! * [`utxoset`] — the address-indexed stable UTXO set with storage-byte
//!   accounting (Figure 5).
//! * [`storage`] — the paged, byte-budgeted storage engine beneath it:
//!   B+-tree maps over fixed-size pages modeling stable memory.
//! * [`state`] — **Algorithm 2**: response validation, anchor advancement
//!   via δ-stability, fork pruning, the τ-lag synced flag.
//! * [`api`] — the endpoints with O(page) cursor pagination and
//!   confirmation filters.
//! * [`qcache`] — the tip-keyed query cache behind
//!   [`BitcoinCanister::query_cached`].
//! * [`canister`] — the [`icbtc_ic::StateMachine`] wrapper with cycles
//!   charges.
//! * [`metering`] — the calibrated instruction-cost model (Figures 6–7).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod api;
pub mod canister;
pub mod metering;
pub mod qcache;
pub mod state;
pub mod storage;
pub mod utxoset;

pub use api::{
    ApiError, GetBalanceResponse, GetBlockHeadersResponse, GetMetricsResponse, GetUtxosResponse,
    UtxosFilter, MAX_UTXOS_PER_PAGE,
};
pub use canister::{BitcoinCanister, CallOutcome, CanisterCall, CanisterReply};
pub use qcache::{CacheKey, QueryCache, DEFAULT_QUERY_CACHE_CAPACITY};
pub use state::{BitcoinCanisterState, IngestReport, RejectReason};
pub use storage::{StorageConfig, StorageError, StorageStats};
pub use utxoset::{Utxo, UtxoSet};

//! The stable UTXO set (§III-C).
//!
//! Instead of storing the blockchain, the Bitcoin canister stores only
//! the unspent transaction outputs up to and including the anchor height,
//! indexed by address for efficient `get_utxos`/`get_balance`. This is
//! what keeps the state ≈ 100 GiB instead of several hundred (Figure 5).

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::ops::Bound;

use icbtc_bitcoin::{Address, Amount, Network, OutPoint, Transaction, TxOut};
use icbtc_ic::{Meter, MeterBreakdown};

use crate::metering;

/// One unspent output as reported by the canister API.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Utxo {
    /// Where the output lives.
    pub outpoint: OutPoint,
    /// Its value.
    pub value: Amount,
    /// Height of the block that created it.
    pub height: u64,
}

/// Sort key: height descending, then outpoint — the order `get_utxos`
/// pagination relies on (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct AddressIndexKey {
    /// `u64::MAX - height` so the natural ascending order is height-desc.
    reverse_height: u64,
    outpoint: OutPoint,
}

impl AddressIndexKey {
    fn new(height: u64, outpoint: OutPoint) -> AddressIndexKey {
        AddressIndexKey { reverse_height: u64::MAX - height, outpoint }
    }

    fn height(&self) -> u64 {
        u64::MAX - self.reverse_height
    }
}

/// The address-indexed stable UTXO set.
///
/// # Examples
///
/// ```
/// use icbtc_canister::utxoset::UtxoSet;
/// use icbtc_bitcoin::Network;
/// use icbtc_ic::MeterBreakdown;
///
/// let set = UtxoSet::new(Network::Regtest);
/// assert_eq!(set.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct UtxoSet {
    network: Network,
    by_outpoint: BTreeMap<OutPoint, (TxOut, u64)>,
    /// Per address, `(height, outpoint) → value`. The value is
    /// denormalized into the index so pagination and balance walks never
    /// touch (or clone from) `by_outpoint`.
    by_address: BTreeMap<Address, BTreeMap<AddressIndexKey, Amount>>,
    next_height: u64,
}

impl UtxoSet {
    /// Creates an empty set for `network`; the first block to ingest is
    /// height 0 (genesis).
    pub fn new(network: Network) -> UtxoSet {
        UtxoSet {
            network,
            by_outpoint: BTreeMap::new(),
            by_address: BTreeMap::new(),
            next_height: 0,
        }
    }

    /// The network whose addresses index this set.
    pub fn network(&self) -> Network {
        self.network
    }

    /// Number of UTXOs held.
    pub fn len(&self) -> usize {
        self.by_outpoint.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.by_outpoint.is_empty()
    }

    /// The height the next ingested block must have.
    pub fn next_height(&self) -> u64 {
        self.next_height
    }

    /// Modeled stable-memory footprint in bytes (Figure 5's y-axis).
    pub fn byte_size(&self) -> u64 {
        self.by_outpoint.len() as u64 * metering::STABLE_BYTES_PER_UTXO
    }

    /// Looks up a single outpoint.
    pub fn get(&self, outpoint: &OutPoint) -> Option<Utxo> {
        self.by_outpoint.get(outpoint).map(|(txout, height)| Utxo {
            outpoint: *outpoint,
            value: txout.value,
            height: *height,
        })
    }

    /// Ingests all transactions of a block at `height` into the set:
    /// inputs are removed, outputs inserted, with instruction charges per
    /// operation recorded in `meter` and the insert/remove split in
    /// `breakdown`.
    ///
    /// Transaction *spend validity* is intentionally not checked (§III-C:
    /// the canister relies on Bitcoin's proof of work and block vetting).
    ///
    /// # Panics
    ///
    /// Panics if `height` is not the expected next height — stable blocks
    /// are ingested strictly in order.
    pub fn ingest_block(
        &mut self,
        transactions: &[Transaction],
        height: u64,
        meter: &mut Meter,
        breakdown: &mut MeterBreakdown,
    ) {
        assert_eq!(height, self.next_height, "stable blocks must be ingested in order");
        for tx in transactions {
            meter.charge(metering::PARSE_TX);
            let txid = tx.txid();
            if !tx.is_coinbase() {
                for input in &tx.inputs {
                    // Unknown outpoints (spends of non-standard or foreign
                    // outputs) are charged like a lookup miss.
                    self.remove(&input.previous_output, meter, breakdown);
                }
            }
            for (vout, output) in tx.outputs.iter().enumerate() {
                if output.script_pubkey.is_op_return() {
                    continue; // provably unspendable, never stored
                }
                self.insert(OutPoint::new(txid, vout as u32), output.clone(), height, meter, breakdown);
            }
        }
        self.next_height = height + 1;
    }

    fn insert(
        &mut self,
        outpoint: OutPoint,
        output: TxOut,
        height: u64,
        meter: &mut Meter,
        breakdown: &mut MeterBreakdown,
    ) {
        let cost = metering::INSERT_OUTPUT_BASE
            + output.script_pubkey.len() as u64 * metering::INSERT_OUTPUT_PER_BYTE;
        meter.charge(cost);
        breakdown.add("output_insertion", cost);
        if let Some(address) = Address::from_script(&output.script_pubkey, self.network) {
            self.by_address
                .entry(address)
                .or_default()
                .insert(AddressIndexKey::new(height, outpoint), output.value);
        }
        self.by_outpoint.insert(outpoint, (output, height));
    }

    fn remove(&mut self, outpoint: &OutPoint, meter: &mut Meter, breakdown: &mut MeterBreakdown) {
        meter.charge(metering::REMOVE_INPUT_BASE);
        breakdown.add("input_removal", metering::REMOVE_INPUT_BASE);
        let Some((output, height)) = self.by_outpoint.remove(outpoint) else {
            return;
        };
        if let Some(address) = Address::from_script(&output.script_pubkey, self.network) {
            if let Entry::Occupied(mut entry) = self.by_address.entry(address) {
                entry.get_mut().remove(&AddressIndexKey::new(height, *outpoint));
                if entry.get().is_empty() {
                    entry.remove();
                }
            }
        }
    }

    /// All UTXOs of `address`, sorted by height descending (then
    /// outpoint), charging per fetched entry.
    pub fn utxos_of(&self, address: &Address, meter: &mut Meter) -> Vec<Utxo> {
        self.utxos_after(address, None)
            .inspect(|_| meter.charge(metering::STABLE_UTXO_FETCH))
            .collect()
    }

    /// Iterates `address`'s UTXOs in pagination order (height descending,
    /// then outpoint), starting strictly *after* the `(height, outpoint)`
    /// cursor if one is given. The walk is a B-tree range scan: reaching
    /// the cursor position costs a tree descent, not a scan of the
    /// preceding entries, so consuming a page costs O(page size)
    /// regardless of the address's total UTXO count.
    ///
    /// No instructions are charged here — callers charge per entry they
    /// actually consume (pagination and balance use different rates).
    pub fn utxos_after<'a>(
        &'a self,
        address: &Address,
        after: Option<(u64, OutPoint)>,
    ) -> impl Iterator<Item = Utxo> + 'a {
        let start = match after {
            Some((height, outpoint)) => Bound::Excluded(AddressIndexKey::new(height, outpoint)),
            None => Bound::Unbounded,
        };
        self.by_address.get(address).into_iter().flat_map(move |index| {
            index.range((start, Bound::Unbounded)).map(|(key, value)| Utxo {
                outpoint: key.outpoint,
                value: *value,
                height: key.height(),
            })
        })
    }

    /// Balance of `address` from the stable set alone, summed directly
    /// over the address index — no `TxOut` is cloned or even looked up,
    /// so each entry is charged the cheaper
    /// [`metering::STABLE_BALANCE_ENTRY`] rate.
    pub fn balance(&self, address: &Address, meter: &mut Meter) -> Amount {
        let Some(index) = self.by_address.get(address) else {
            return Amount::ZERO;
        };
        index
            .values()
            .map(|value| {
                meter.charge(metering::STABLE_BALANCE_ENTRY);
                *value
            })
            .sum()
    }

    /// Number of distinct addresses indexed.
    pub fn address_count(&self) -> usize {
        self.by_address.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{AddressKind, Script, TxIn, Txid};

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn pay_tx(prev: Option<OutPoint>, to: &[(u8, u64)]) -> Transaction {
        let inputs = match prev {
            Some(op) => vec![TxIn::new(op)],
            None => vec![TxIn::new(OutPoint::NULL)],
        };
        Transaction {
            version: 2,
            inputs,
            outputs: to
                .iter()
                .map(|(n, v)| TxOut::new(Amount::from_sat(*v), addr(*n).script_pubkey()))
                .collect(),
            lock_time: 0,
        }
    }

    fn fresh() -> (UtxoSet, Meter, MeterBreakdown) {
        (UtxoSet::new(Network::Regtest), Meter::new(), MeterBreakdown::new())
    }

    #[test]
    fn ingest_coinbase_creates_utxos() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let coinbase = pay_tx(None, &[(1, 5000)]);
        set.ingest_block(std::slice::from_ref(&coinbase), 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 1);
        assert_eq!(set.next_height(), 1);
        assert_eq!(set.balance(&addr(1), &mut Meter::new()), Amount::from_sat(5000));
        let utxo = set.get(&OutPoint::new(coinbase.txid(), 0)).unwrap();
        assert_eq!(utxo.height, 0);
        assert!(meter.instructions() > 0);
        assert!(breakdown.get("output_insertion") > 0);
        // Coinbase inputs are not treated as removals.
        assert_eq!(breakdown.get("input_removal"), 0);
    }

    #[test]
    fn spend_moves_value_between_addresses() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let coinbase = pay_tx(None, &[(1, 5000)]);
        set.ingest_block(std::slice::from_ref(&coinbase), 0, &mut meter, &mut breakdown);
        let spend = pay_tx(Some(OutPoint::new(coinbase.txid(), 0)), &[(2, 3000), (1, 1900)]);
        set.ingest_block(&[spend], 1, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 2);
        assert_eq!(set.balance(&addr(2), &mut Meter::new()), Amount::from_sat(3000));
        assert_eq!(set.balance(&addr(1), &mut Meter::new()), Amount::from_sat(1900));
        assert!(breakdown.get("input_removal") > 0);
    }

    #[test]
    fn utxos_sorted_by_height_descending() {
        let (mut set, mut meter, mut breakdown) = fresh();
        for height in 0..5 {
            let tx = pay_tx(None, &[(7, 100 + height)]);
            set.ingest_block(&[tx], height, &mut meter, &mut breakdown);
        }
        let utxos = set.utxos_of(&addr(7), &mut Meter::new());
        assert_eq!(utxos.len(), 5);
        let heights: Vec<u64> = utxos.iter().map(|u| u.height).collect();
        assert_eq!(heights, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn utxos_after_resumes_strictly_past_the_cursor() {
        let (mut set, mut meter, mut breakdown) = fresh();
        for height in 0..6 {
            let tx = pay_tx(None, &[(7, 100 + height)]);
            set.ingest_block(&[tx], height, &mut meter, &mut breakdown);
        }
        let all: Vec<Utxo> = set.utxos_after(&addr(7), None).collect();
        assert_eq!(all.len(), 6);
        // Resume from the second entry: exactly the suffix comes back.
        let cursor = (all[1].height, all[1].outpoint);
        let rest: Vec<Utxo> = set.utxos_after(&addr(7), Some(cursor)).collect();
        assert_eq!(rest, all[2..].to_vec());
        // A cursor at the last entry yields nothing.
        let last = (all[5].height, all[5].outpoint);
        assert_eq!(set.utxos_after(&addr(7), Some(last)).count(), 0);
        // Unknown addresses yield nothing.
        assert_eq!(set.utxos_after(&addr(9), None).count(), 0);
    }

    #[test]
    fn balance_charges_per_index_entry_not_per_fetch() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let tx = pay_tx(None, &[(7, 10), (7, 20), (7, 30)]);
        set.ingest_block(&[tx], 0, &mut meter, &mut breakdown);
        let mut balance_meter = Meter::new();
        assert_eq!(set.balance(&addr(7), &mut balance_meter), Amount::from_sat(60));
        assert_eq!(balance_meter.instructions(), 3 * metering::STABLE_BALANCE_ENTRY);
        let mut fetch_meter = Meter::new();
        let _ = set.utxos_of(&addr(7), &mut fetch_meter);
        assert!(balance_meter.instructions() < fetch_meter.instructions());
    }

    #[test]
    fn op_return_outputs_never_stored() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let mut tx = pay_tx(None, &[(1, 100)]);
        tx.outputs.push(TxOut::new(Amount::ZERO, Script::new_op_return(b"data")));
        set.ingest_block(&[tx], 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn nonstandard_scripts_counted_but_not_indexed() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let mut tx = pay_tx(None, &[(1, 100)]);
        tx.outputs.push(TxOut::new(Amount::from_sat(50), Script::from_bytes(vec![0xde, 0xad])));
        set.ingest_block(&[tx.clone()], 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 2, "held in the outpoint map");
        assert_eq!(set.address_count(), 1, "but not address-indexed");
        assert!(set.get(&OutPoint::new(tx.txid(), 1)).is_some());
    }

    #[test]
    fn unknown_input_removal_is_charged_but_harmless() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let spend = pay_tx(Some(OutPoint::new(Txid([9; 32]), 3)), &[(2, 10)]);
        set.ingest_block(&[spend], 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 1);
        assert_eq!(breakdown.get("input_removal"), metering::REMOVE_INPUT_BASE);
    }

    #[test]
    #[should_panic]
    fn out_of_order_ingestion_panics() {
        let (mut set, mut meter, mut breakdown) = fresh();
        set.ingest_block(&[pay_tx(None, &[(1, 1)])], 5, &mut meter, &mut breakdown);
    }

    #[test]
    fn byte_size_tracks_utxo_count() {
        let (mut set, mut meter, mut breakdown) = fresh();
        assert_eq!(set.byte_size(), 0);
        set.ingest_block(&[pay_tx(None, &[(1, 1), (2, 2), (3, 3)])], 0, &mut meter, &mut breakdown);
        assert_eq!(set.byte_size(), 3 * metering::STABLE_BYTES_PER_UTXO);
    }

    #[test]
    fn fig6_breakdown_split_is_roughly_even_on_balanced_blocks() {
        let (mut set, mut meter, mut breakdown) = fresh();
        // Block 0: create 50 outputs.
        let creators: Vec<Transaction> =
            (0..50).map(|i| pay_tx(None, &[(i as u8, 100)])).collect();
        set.ingest_block(&creators, 0, &mut meter, &mut breakdown);
        // Block 1: spend all 50, creating 50 new ones.
        let spends: Vec<Transaction> = creators
            .iter()
            .enumerate()
            .map(|(i, c)| pay_tx(Some(OutPoint::new(c.txid(), 0)), &[(200 - i as u8, 90)]))
            .collect();
        let mut block1 = MeterBreakdown::new();
        set.ingest_block(&spends, 1, &mut meter, &mut block1);
        let insert = block1.get("output_insertion") as f64;
        let remove = block1.get("input_removal") as f64;
        let share = insert / (insert + remove);
        assert!((0.35..0.65).contains(&share), "insert share {share}");
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Ingesting creator blocks then spending everything returns
        /// the set to empty: conservation of UTXOs.
        #[test]
        fn create_then_spend_all() {
            testkit::check(0xC4_0001, testkit::DEFAULT_CASES, |rng| {
                let values = testkit::vec_with(rng, 1..20, |r| testkit::u64_in(r, 1..10_000));
                let (mut set, mut meter, mut breakdown) = fresh();
                let creators: Vec<Transaction> = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| pay_tx(None, &[((i % 250) as u8, *v)]))
                    .collect();
                set.ingest_block(&creators, 0, &mut meter, &mut breakdown);
                assert_eq!(set.len(), values.len());

                let spends: Vec<Transaction> = creators
                    .iter()
                    .map(|c| {
                        let mut tx = pay_tx(Some(OutPoint::new(c.txid(), 0)), &[(0, 1)]);
                        tx.outputs[0].script_pubkey = Script::new_op_return(b"burn");
                        tx
                    })
                    .collect();
                set.ingest_block(&spends, 1, &mut meter, &mut breakdown);
                assert_eq!(set.len(), 0);
                assert_eq!(set.address_count(), 0);
            });
        }
    }
}

//! The stable UTXO set (§III-C), backed by the paged storage engine.
//!
//! Instead of storing the blockchain, the Bitcoin canister stores only
//! the unspent transaction outputs up to and including the anchor height,
//! indexed by address for efficient `get_utxos`/`get_balance`. This is
//! what keeps the state ≈ 100 GiB instead of several hundred (Figure 5).
//!
//! Both maps — `by_outpoint` and the `by_address` secondary index — are
//! [`PagedMap`] B+-trees over one shared, byte-budgeted [`PagePool`]
//! (see [`crate::storage`]), mirroring the production canister's stable
//! memory layout. Ingesting past the budget fails loudly
//! ([`StorageError::BudgetExhausted`]); it can never silently OOM the
//! replica. [`UtxoSet::serialize`] produces a versioned, deterministic
//! snapshot for upgrade safety, and [`UtxoSet::storage_stats`] feeds the
//! `canister_storage_*` gauges.

use icbtc_bitcoin::hash::{sha256, Sha256};
use icbtc_bitcoin::{Address, Amount, Network, OutPoint, Script, Transaction, TxOut};
use icbtc_ic::{Meter, MeterBreakdown};

use crate::metering;
use crate::storage::{btree, codec, PagePool, PagedMap, StorageConfig, StorageError, StorageStats};

/// One unspent output as reported by the canister API.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Utxo {
    /// Where the output lives.
    pub outpoint: OutPoint,
    /// Its value.
    pub value: Amount,
    /// Height of the block that created it.
    pub height: u64,
}

/// Magic prefix of a serialized snapshot.
const SNAPSHOT_MAGIC: &[u8; 8] = b"ICBTCUTX";
/// Snapshot layout version; bump on any layout change so upgrades can
/// dispatch on it.
const SNAPSHOT_VERSION: u16 = 1;

/// The address-indexed stable UTXO set.
///
/// # Examples
///
/// ```
/// use icbtc_canister::utxoset::UtxoSet;
/// use icbtc_bitcoin::Network;
/// use icbtc_ic::MeterBreakdown;
///
/// let set = UtxoSet::new(Network::Regtest);
/// assert_eq!(set.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct UtxoSet {
    network: Network,
    pool: PagePool,
    /// `txid ‖ vout → height ‖ amount ‖ script` (see [`codec`]).
    by_outpoint: PagedMap,
    /// `address-prefix ‖ reverse-height ‖ outpoint → amount`: the value
    /// is denormalized into the index so pagination and balance walks
    /// never touch `by_outpoint`.
    by_address: PagedMap,
    next_height: u64,
}

impl UtxoSet {
    /// Creates an empty set for `network` with the default 4 GiB budget;
    /// the first block to ingest is height 0 (genesis).
    pub fn new(network: Network) -> UtxoSet {
        UtxoSet::with_config(network, StorageConfig::default())
    }

    /// Creates an empty set with an explicit page size and byte budget.
    pub fn with_config(network: Network, config: StorageConfig) -> UtxoSet {
        UtxoSet {
            network,
            pool: PagePool::new(config),
            by_outpoint: PagedMap::new(),
            by_address: PagedMap::new(),
            next_height: 0,
        }
    }

    /// The network whose addresses index this set.
    pub fn network(&self) -> Network {
        self.network
    }

    /// The storage configuration (page size clamped by the pool).
    pub fn storage_config(&self) -> &StorageConfig {
        self.pool.config()
    }

    /// Number of UTXOs held.
    pub fn len(&self) -> usize {
        self.by_outpoint.len() as usize
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.by_outpoint.is_empty()
    }

    /// The height the next ingested block must have.
    pub fn next_height(&self) -> u64 {
        self.next_height
    }

    /// Stable-memory footprint in bytes (Figure 5's y-axis): pages
    /// actually allocated times page size — what counts against the
    /// byte budget. Entries are sized by their real serialized length
    /// (script included), so script-size variance shows up here.
    pub fn byte_size(&self) -> u64 {
        self.pool.bytes_reserved()
    }

    /// Point-in-time storage counters for the `canister_storage_*`
    /// gauges and the fig5 bench report.
    pub fn storage_stats(&self) -> StorageStats {
        let config = self.pool.config();
        StorageStats {
            page_size: config.page_size as u64,
            byte_budget: config.byte_budget,
            pages_allocated: self.pool.pages_allocated(),
            bytes_reserved: self.pool.bytes_reserved(),
            bytes_used: self.pool.pages_allocated() * btree::NODE_HEADER_BYTES as u64
                + self.by_outpoint.cell_bytes()
                + self.by_address.cell_bytes(),
            budget_headroom: self.pool.budget_headroom(),
            entries: self.by_outpoint.len() + self.by_address.len(),
            entry_bytes: self.by_outpoint.entry_bytes() + self.by_address.entry_bytes(),
        }
    }

    /// Looks up a single outpoint.
    pub fn get(&self, outpoint: &OutPoint) -> Option<Utxo> {
        let key = codec::outpoint_key(outpoint);
        self.by_outpoint.get(&self.pool, &key).map(|value| {
            let (height, amount, _script) = codec::decode_utxo_value(value);
            Utxo { outpoint: *outpoint, value: amount, height }
        })
    }

    /// Ingests all transactions of a block at `height` into the set:
    /// inputs are removed, outputs inserted, with instruction charges per
    /// operation recorded in `meter` and the insert/remove split in
    /// `breakdown`.
    ///
    /// Transaction *spend validity* is intentionally not checked (§III-C:
    /// the canister relies on Bitcoin's proof of work and block vetting).
    ///
    /// # Panics
    ///
    /// Panics if `height` is not the expected next height — stable blocks
    /// are ingested strictly in order — or if the storage budget is
    /// exhausted mid-block. Callers that want to handle budget exhaustion
    /// use [`UtxoSet::try_ingest_block`].
    pub fn ingest_block(
        &mut self,
        transactions: &[Transaction],
        height: u64,
        meter: &mut Meter,
        breakdown: &mut MeterBreakdown,
    ) {
        if let Err(error) = self.try_ingest_block(transactions, height, meter, breakdown) {
            panic!("stable UTXO storage failed ingesting height {height}: {error}"); // icbtc-lint: allow(no-panic) -- the budget must fail loudly: continuing past it would silently diverge replicated state
        }
    }

    /// Fallible ingest: like [`UtxoSet::ingest_block`] but returns the
    /// storage error instead of panicking when the byte budget (or the
    /// per-entry cell cap) is hit.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfOrderIngestion`] if `height` is not the
    /// expected next height (rejected before touching any state), or
    /// [`StorageError::BudgetExhausted`] / [`StorageError::EntryTooLarge`]
    /// mid-block. After a mid-block error the block is only partially
    /// applied, so the set must be treated as poisoned and discarded —
    /// fail loudly, never continue past the budget.
    pub fn try_ingest_block(
        &mut self,
        transactions: &[Transaction],
        height: u64,
        meter: &mut Meter,
        breakdown: &mut MeterBreakdown,
    ) -> Result<(), StorageError> {
        if height != self.next_height {
            return Err(StorageError::OutOfOrderIngestion {
                expected: self.next_height,
                got: height,
            });
        }
        for tx in transactions {
            let hashing = meter.frame("hashing");
            meter.charge(metering::TX_HASHING);
            let txid = tx.txid();
            meter.frame_end(hashing);
            let decode = meter.frame("tx_decode");
            meter.charge(metering::TX_DECODE);
            meter.frame_end(decode);
            if !tx.is_coinbase() {
                for input in &tx.inputs {
                    // Unknown outpoints (spends of non-standard or foreign
                    // outputs) are charged like a lookup miss.
                    self.remove(&input.previous_output, meter, breakdown);
                }
            }
            for (vout, output) in tx.outputs.iter().enumerate() {
                if output.script_pubkey.is_op_return() {
                    continue; // provably unspendable, never stored
                }
                self.insert(OutPoint::new(txid, vout as u32), output, height, meter, breakdown)?;
            }
        }
        self.next_height = height + 1;
        Ok(())
    }

    fn insert(
        &mut self,
        outpoint: OutPoint,
        output: &TxOut,
        height: u64,
        meter: &mut Meter,
        breakdown: &mut MeterBreakdown,
    ) -> Result<(), StorageError> {
        // All three cost parts are charged up front — before the fallible
        // storage operations — exactly where the single flat charge used
        // to be, so metered totals are unchanged on every path (including
        // budget-exhaustion errors). The frames only re-attribute.
        let script_cost = metering::INSERT_SCRIPT_PARSE
            + output.script_pubkey.len() as u64 * metering::INSERT_OUTPUT_PER_BYTE;
        let script_parse = meter.frame("script_parse");
        meter.charge(script_cost);
        meter.frame_end(script_parse);
        let apply = meter.frame("utxo_apply");
        meter.charge(metering::INSERT_OUTPOINT);
        meter.frame_end(apply);
        let index = meter.frame("by_address_index");
        meter.charge(metering::INSERT_BY_ADDRESS);
        meter.frame_end(index);
        breakdown.add(
            "output_insertion",
            script_cost + metering::INSERT_OUTPOINT + metering::INSERT_BY_ADDRESS,
        );
        let key = codec::outpoint_key(&outpoint);
        let value = codec::utxo_value(height, output.value, output.script_pubkey.as_bytes());
        let previous = self.by_outpoint.insert(&mut self.pool, &key, &value)?;
        if let Some(previous) = previous {
            // The outpoint already existed (pre-BIP34 duplicate txid):
            // evict its old index entry, or a stale `(old height,
            // outpoint)` key would linger in `by_address` and double-count
            // in `get_balance` / `get_utxos`.
            let (old_height, _, old_script) = codec::decode_utxo_value(&previous);
            let old_script = Script::from_bytes(old_script.to_vec());
            if let Some(old_address) = Address::from_script(&old_script, self.network) {
                let stale = codec::index_key(&old_address, old_height, &outpoint);
                self.by_address.remove(&mut self.pool, &stale);
            }
        }
        if let Some(address) = Address::from_script(&output.script_pubkey, self.network) {
            let index_key = codec::index_key(&address, height, &outpoint);
            self.by_address.insert(
                &mut self.pool,
                &index_key,
                &codec::amount_value(output.value),
            )?;
        }
        Ok(())
    }

    fn remove(&mut self, outpoint: &OutPoint, meter: &mut Meter, breakdown: &mut MeterBreakdown) {
        // As in `insert`: the three parts are charged unconditionally up
        // front (the old flat charge applied on all paths, misses
        // included), so the split is charge-neutral everywhere.
        let script_parse = meter.frame("script_parse");
        meter.charge(metering::REMOVE_SCRIPT_PARSE);
        meter.frame_end(script_parse);
        let apply = meter.frame("utxo_apply");
        meter.charge(metering::REMOVE_OUTPOINT);
        meter.frame_end(apply);
        let index = meter.frame("by_address_index");
        meter.charge(metering::REMOVE_BY_ADDRESS);
        meter.frame_end(index);
        breakdown.add("input_removal", metering::REMOVE_INPUT_BASE);
        let key = codec::outpoint_key(outpoint);
        let Some(value) = self.by_outpoint.remove(&mut self.pool, &key) else {
            return;
        };
        let (height, _, script) = codec::decode_utxo_value(&value);
        let script = Script::from_bytes(script.to_vec());
        if let Some(address) = Address::from_script(&script, self.network) {
            let index_key = codec::index_key(&address, height, outpoint);
            self.by_address.remove(&mut self.pool, &index_key);
        }
    }

    /// All UTXOs of `address`, sorted by height descending (then
    /// outpoint), charging per fetched entry.
    pub fn utxos_of(&self, address: &Address, meter: &mut Meter) -> Vec<Utxo> {
        self.utxos_after(address, None)
            .inspect(|_| meter.charge(metering::STABLE_UTXO_FETCH))
            .collect()
    }

    /// Iterates `address`'s UTXOs in pagination order (height descending,
    /// then outpoint), starting strictly *after* the `(height, outpoint)`
    /// cursor if one is given. The walk is a B-tree range scan: reaching
    /// the cursor position costs a tree descent, not a scan of the
    /// preceding entries, so consuming a page costs O(page size)
    /// regardless of the address's total UTXO count.
    ///
    /// No instructions are charged here — callers charge per entry they
    /// actually consume (pagination and balance use different rates).
    pub fn utxos_after<'a>(
        &'a self,
        address: &Address,
        after: Option<(u64, OutPoint)>,
    ) -> impl Iterator<Item = Utxo> + 'a {
        let prefix = codec::address_prefix(address);
        let (start, exclusive) = match after {
            Some((height, outpoint)) => (codec::index_key(address, height, &outpoint), true),
            None => (prefix.clone(), false),
        };
        self.by_address
            .range_from(&self.pool, &start)
            // `range_from` is inclusive; at most the first entry can
            // equal the cursor key — skip it for strictly-after.
            .skip_while(move |(key, _)| exclusive && *key == start.as_slice())
            .take_while(move |(key, _)| key.starts_with(&prefix))
            .map(|(key, value)| {
                let (height, outpoint) = codec::decode_index_key_suffix(key);
                Utxo { outpoint, value: codec::decode_amount_value(value), height }
            })
    }

    /// Balance of `address` from the stable set alone, summed directly
    /// over the address index — no `TxOut` is cloned or even looked up,
    /// so each entry is charged the cheaper
    /// [`metering::STABLE_BALANCE_ENTRY`] rate. Accumulation saturates at
    /// [`Amount::MAX_MONEY`]: a hostile chain of max-value outputs clamps
    /// instead of overflowing.
    pub fn balance(&self, address: &Address, meter: &mut Meter) -> Amount {
        self.utxos_after(address, None).fold(Amount::ZERO, |total, utxo| {
            meter.charge(metering::STABLE_BALANCE_ENTRY);
            total.saturating_add(utxo.value)
        })
    }

    /// Number of distinct addresses indexed. O(index size) — the engine
    /// keeps no per-address state; this is a diagnostics/test helper, not
    /// a query-plane call.
    pub fn address_count(&self) -> usize {
        let mut count = 0;
        let mut last: Vec<u8> = Vec::new();
        for (key, _) in self.by_address.iter(&self.pool) {
            let prefix = &key[..key.len() - codec::INDEX_KEY_SUFFIX_LEN];
            if last != prefix {
                count += 1;
                last.clear();
                last.extend_from_slice(prefix);
            }
        }
        count
    }

    /// Streams the canonical snapshot bytes into `sink` — shared by
    /// [`UtxoSet::serialize`] and [`UtxoSet::state_hash`] so the hash is
    /// always the hash of the exact serialized bytes.
    fn snapshot_into(&self, sink: &mut dyn FnMut(&[u8])) {
        sink(SNAPSHOT_MAGIC);
        sink(&SNAPSHOT_VERSION.to_be_bytes());
        sink(&[codec::network_tag(self.network)]);
        sink(&(self.pool.page_size() as u32).to_be_bytes());
        sink(&self.pool.config().byte_budget.to_be_bytes());
        sink(&self.next_height.to_be_bytes());
        for map in [&self.by_outpoint, &self.by_address] {
            sink(&map.len().to_be_bytes());
            for (key, value) in map.iter(&self.pool) {
                sink(&(key.len() as u16).to_be_bytes());
                sink(key);
                sink(&(value.len() as u16).to_be_bytes());
                sink(value);
            }
        }
    }

    /// Serializes the set into the versioned upgrade snapshot: a fixed
    /// header (magic, version, network, storage config, next height)
    /// followed by both maps' entries in ascending key order. The layout
    /// is a pure function of the logical content — two sets holding the
    /// same UTXOs serialize byte-identically regardless of their page
    /// layout history.
    pub fn serialize(&self) -> Vec<u8> {
        let stats = self.storage_stats();
        let mut out = Vec::with_capacity(47 + stats.entry_bytes as usize + 4 * stats.entries as usize);
        self.snapshot_into(&mut |bytes| out.extend_from_slice(bytes));
        out
    }

    /// SHA-256d over the serialized snapshot, computed streaming (no
    /// intermediate buffer) — the state fingerprint the determinism gate
    /// compares across runs.
    pub fn state_hash(&self) -> [u8; 32] {
        let mut hasher = Sha256::new();
        self.snapshot_into(&mut |bytes| hasher.update(bytes));
        sha256(&hasher.finalize())
    }

    /// Rebuilds a set from [`UtxoSet::serialize`] bytes.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] on malformed bytes or an unknown
    /// version; [`StorageError::BudgetExhausted`] if the snapshot does
    /// not fit its own declared budget.
    pub fn deserialize(bytes: &[u8]) -> Result<UtxoSet, StorageError> {
        let mut cursor = SnapshotReader { bytes, pos: 0 };
        if cursor.take(8)? != SNAPSHOT_MAGIC {
            return Err(StorageError::Corrupt("bad magic"));
        }
        if cursor.u16()? != SNAPSHOT_VERSION {
            return Err(StorageError::Corrupt("unknown snapshot version"));
        }
        let network = codec::network_from_tag(cursor.u8()?)?;
        let page_size = cursor.u32()? as usize;
        let byte_budget = cursor.u64()?;
        let next_height = cursor.u64()?;
        let mut set = UtxoSet::with_config(network, StorageConfig { page_size, byte_budget });
        set.next_height = next_height;
        for map in [0, 1] {
            let entries = cursor.u64()?;
            for _ in 0..entries {
                let klen = cursor.u16()? as usize;
                let key = cursor.take(klen)?.to_vec();
                let vlen = cursor.u16()? as usize;
                let value = cursor.take(vlen)?.to_vec();
                if map == 0 {
                    set.by_outpoint.insert(&mut set.pool, &key, &value)?;
                } else {
                    set.by_address.insert(&mut set.pool, &key, &value)?;
                }
            }
        }
        if cursor.pos != bytes.len() {
            return Err(StorageError::Corrupt("trailing bytes"));
        }
        Ok(set)
    }
}

/// Minimal bounds-checked reader for snapshot deserialization, shared
/// with the full-state checkpoint envelope in [`crate::state`] and the
/// canister-level wrapper in [`crate::canister`].
pub(crate) struct SnapshotReader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> SnapshotReader<'a> {
    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(StorageError::Corrupt("truncated snapshot"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, StorageError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, StorageError> {
        let b = self.take(16)?;
        let mut raw = [0u8; 16];
        raw.copy_from_slice(b);
        Ok(u128::from_be_bytes(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{AddressKind, Script, TxIn, Txid};

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn pay_tx(prev: Option<OutPoint>, to: &[(u8, u64)]) -> Transaction {
        let inputs = match prev {
            Some(op) => vec![TxIn::new(op)],
            None => vec![TxIn::new(OutPoint::NULL)],
        };
        Transaction {
            version: 2,
            inputs,
            outputs: to
                .iter()
                .map(|(n, v)| TxOut::new(Amount::from_sat(*v), addr(*n).script_pubkey()))
                .collect(),
            lock_time: 0,
        }
    }

    fn fresh() -> (UtxoSet, Meter, MeterBreakdown) {
        (UtxoSet::new(Network::Regtest), Meter::new(), MeterBreakdown::new())
    }

    #[test]
    fn ingest_coinbase_creates_utxos() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let coinbase = pay_tx(None, &[(1, 5000)]);
        set.ingest_block(std::slice::from_ref(&coinbase), 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 1);
        assert_eq!(set.next_height(), 1);
        assert_eq!(set.balance(&addr(1), &mut Meter::new()), Amount::from_sat(5000));
        let utxo = set.get(&OutPoint::new(coinbase.txid(), 0)).unwrap();
        assert_eq!(utxo.height, 0);
        assert!(meter.instructions() > 0);
        assert!(breakdown.get("output_insertion") > 0);
        // Coinbase inputs are not treated as removals.
        assert_eq!(breakdown.get("input_removal"), 0);
    }

    #[test]
    fn spend_moves_value_between_addresses() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let coinbase = pay_tx(None, &[(1, 5000)]);
        set.ingest_block(std::slice::from_ref(&coinbase), 0, &mut meter, &mut breakdown);
        let spend = pay_tx(Some(OutPoint::new(coinbase.txid(), 0)), &[(2, 3000), (1, 1900)]);
        set.ingest_block(&[spend], 1, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 2);
        assert_eq!(set.balance(&addr(2), &mut Meter::new()), Amount::from_sat(3000));
        assert_eq!(set.balance(&addr(1), &mut Meter::new()), Amount::from_sat(1900));
        assert!(breakdown.get("input_removal") > 0);
    }

    #[test]
    fn utxos_sorted_by_height_descending() {
        let (mut set, mut meter, mut breakdown) = fresh();
        for height in 0..5 {
            let tx = pay_tx(None, &[(7, 100 + height)]);
            set.ingest_block(&[tx], height, &mut meter, &mut breakdown);
        }
        let utxos = set.utxos_of(&addr(7), &mut Meter::new());
        assert_eq!(utxos.len(), 5);
        let heights: Vec<u64> = utxos.iter().map(|u| u.height).collect();
        assert_eq!(heights, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn utxos_after_resumes_strictly_past_the_cursor() {
        let (mut set, mut meter, mut breakdown) = fresh();
        for height in 0..6 {
            let tx = pay_tx(None, &[(7, 100 + height)]);
            set.ingest_block(&[tx], height, &mut meter, &mut breakdown);
        }
        let all: Vec<Utxo> = set.utxos_after(&addr(7), None).collect();
        assert_eq!(all.len(), 6);
        // Resume from the second entry: exactly the suffix comes back.
        let cursor = (all[1].height, all[1].outpoint);
        let rest: Vec<Utxo> = set.utxos_after(&addr(7), Some(cursor)).collect();
        assert_eq!(rest, all[2..].to_vec());
        // A cursor at the last entry yields nothing.
        let last = (all[5].height, all[5].outpoint);
        assert_eq!(set.utxos_after(&addr(7), Some(last)).count(), 0);
        // Unknown addresses yield nothing.
        assert_eq!(set.utxos_after(&addr(9), None).count(), 0);
    }

    #[test]
    fn balance_charges_per_index_entry_not_per_fetch() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let tx = pay_tx(None, &[(7, 10), (7, 20), (7, 30)]);
        set.ingest_block(&[tx], 0, &mut meter, &mut breakdown);
        let mut balance_meter = Meter::new();
        assert_eq!(set.balance(&addr(7), &mut balance_meter), Amount::from_sat(60));
        assert_eq!(balance_meter.instructions(), 3 * metering::STABLE_BALANCE_ENTRY);
        let mut fetch_meter = Meter::new();
        let _ = set.utxos_of(&addr(7), &mut fetch_meter);
        assert!(balance_meter.instructions() < fetch_meter.instructions());
    }

    #[test]
    fn balance_saturates_instead_of_overflowing() {
        // A hostile chain can mint outputs summing past MAX_MONEY — the
        // set does not validate issuance (§III-C). The old `.sum()`
        // accumulator panicked here; saturating accumulation clamps.
        let (mut set, mut meter, mut breakdown) = fresh();
        let near_max = Amount::MAX_MONEY.to_sat() - 10;
        let tx = pay_tx(None, &[(7, near_max), (7, near_max), (7, 25)]);
        set.ingest_block(&[tx], 0, &mut meter, &mut breakdown);
        let balance = set.balance(&addr(7), &mut Meter::new());
        assert_eq!(balance, Amount::MAX_MONEY);
    }

    #[test]
    fn duplicate_outpoint_reinsert_evicts_stale_index_entry() {
        // Pre-BIP34, two coinbase transactions could be byte-identical
        // and thus share a txid: the later one overwrites the earlier
        // outpoint at a new height. The old implementation stranded the
        // height-0 key in `by_address`, double-counting the output in
        // balance and pagination.
        let (mut set, mut meter, mut breakdown) = fresh();
        let coinbase = pay_tx(None, &[(1, 5000)]);
        set.ingest_block(std::slice::from_ref(&coinbase), 0, &mut meter, &mut breakdown);
        // Identical transaction ⇒ identical txid ⇒ same outpoint.
        set.ingest_block(std::slice::from_ref(&coinbase), 1, &mut meter, &mut breakdown);

        assert_eq!(set.len(), 1, "one outpoint, not two");
        assert_eq!(
            set.balance(&addr(1), &mut Meter::new()),
            Amount::from_sat(5000),
            "balance must not double-count the re-inserted outpoint"
        );
        let utxos = set.utxos_of(&addr(1), &mut Meter::new());
        assert_eq!(utxos.len(), 1, "pagination must see exactly one entry");
        assert_eq!(utxos[0].height, 1, "the re-insert wins");
        // Spending it once empties the whole index.
        let spend = pay_tx(Some(OutPoint::new(coinbase.txid(), 0)), &[(2, 4000)]);
        set.ingest_block(&[spend], 2, &mut meter, &mut breakdown);
        assert_eq!(set.balance(&addr(1), &mut Meter::new()), Amount::ZERO);
        assert_eq!(set.address_count(), 1);
    }

    #[test]
    fn duplicate_outpoint_with_new_script_moves_the_index_entry() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let first = pay_tx(None, &[(1, 5000)]);
        let outpoint = OutPoint::new(first.txid(), 0);
        set.ingest_block(&[first], 0, &mut meter, &mut breakdown);
        // Re-insert the same outpoint paying a different address (txid
        // collisions don't imply identical outputs for the storage
        // layer): the old address must lose its entry.
        let replacement = TxOut::new(Amount::from_sat(7000), addr(2).script_pubkey());
        set.insert(outpoint, &replacement, 1, &mut meter, &mut breakdown).unwrap();
        assert_eq!(set.balance(&addr(1), &mut Meter::new()), Amount::ZERO);
        assert_eq!(set.balance(&addr(2), &mut Meter::new()), Amount::from_sat(7000));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn op_return_outputs_never_stored() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let mut tx = pay_tx(None, &[(1, 100)]);
        tx.outputs.push(TxOut::new(Amount::ZERO, Script::new_op_return(b"data")));
        set.ingest_block(&[tx], 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn nonstandard_scripts_counted_but_not_indexed() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let mut tx = pay_tx(None, &[(1, 100)]);
        tx.outputs.push(TxOut::new(Amount::from_sat(50), Script::from_bytes(vec![0xde, 0xad])));
        set.ingest_block(&[tx.clone()], 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 2, "held in the outpoint map");
        assert_eq!(set.address_count(), 1, "but not address-indexed");
        assert!(set.get(&OutPoint::new(tx.txid(), 1)).is_some());
    }

    #[test]
    fn unknown_input_removal_is_charged_but_harmless() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let spend = pay_tx(Some(OutPoint::new(Txid([9; 32]), 3)), &[(2, 10)]);
        set.ingest_block(&[spend], 0, &mut meter, &mut breakdown);
        assert_eq!(set.len(), 1);
        assert_eq!(breakdown.get("input_removal"), metering::REMOVE_INPUT_BASE);
    }

    #[test]
    #[should_panic(expected = "stable blocks must be ingested in order")]
    fn out_of_order_ingestion_panics() {
        let (mut set, mut meter, mut breakdown) = fresh();
        set.ingest_block(&[pay_tx(None, &[(1, 1)])], 5, &mut meter, &mut breakdown);
    }

    #[test]
    fn out_of_order_ingestion_is_a_typed_error() {
        let (mut set, mut meter, mut breakdown) = fresh();
        let err = set
            .try_ingest_block(&[pay_tx(None, &[(1, 1)])], 5, &mut meter, &mut breakdown)
            .unwrap_err();
        assert_eq!(err, StorageError::OutOfOrderIngestion { expected: 0, got: 5 });
        // Rejected before touching any state: the set stays usable.
        set.ingest_block(&[pay_tx(None, &[(1, 1)])], 0, &mut meter, &mut breakdown);
        assert_eq!(set.next_height(), 1);
    }

    #[test]
    fn byte_size_is_pages_actually_allocated() {
        let (mut set, mut meter, mut breakdown) = fresh();
        assert_eq!(set.byte_size(), 0, "no pages before the first insert");
        set.ingest_block(&[pay_tx(None, &[(1, 1), (2, 2), (3, 3)])], 0, &mut meter, &mut breakdown);
        let page_size = set.storage_config().page_size as u64;
        assert_eq!(set.byte_size() % page_size, 0, "whole pages only");
        assert_eq!(set.byte_size(), set.storage_stats().bytes_reserved);
        // Two maps, each one leaf page at this size.
        assert_eq!(set.byte_size(), 2 * page_size);
        let stats = set.storage_stats();
        assert!(stats.bytes_used > 0 && stats.bytes_used <= stats.bytes_reserved);
        assert_eq!(stats.entries, 6, "3 outpoints + 3 index entries");
    }

    #[test]
    fn byte_size_reflects_script_length() {
        // The flat 650-bytes-per-UTXO model ignored script variance; the
        // engine sizes entries by their serialized length, so fatter
        // scripts fill pages faster.
        let fill = |script_len: usize| -> u64 {
            let mut set = UtxoSet::new(Network::Regtest);
            let (mut meter, mut breakdown) = (Meter::new(), MeterBreakdown::new());
            for height in 0..40u64 {
                let tx = Transaction {
                    version: 2,
                    inputs: vec![TxIn::new(OutPoint::new(Txid([height as u8; 32]), 7777))],
                    outputs: (0..50)
                        .map(|_| {
                            TxOut::new(
                                Amount::from_sat(1000),
                                Script::from_bytes(vec![0x51; script_len]),
                            )
                        })
                        .collect(),
                    lock_time: 0,
                };
                set.ingest_block(&[tx], height, &mut meter, &mut breakdown);
            }
            set.byte_size()
        };
        let thin = fill(22);
        let fat = fill(500);
        assert!(
            fat >= 2 * thin,
            "same UTXO count must cost more pages with fat scripts: {thin} vs {fat}"
        );
    }

    #[test]
    fn ingest_past_the_budget_fails_loudly_not_silently() {
        let mut set = UtxoSet::with_config(
            Network::Regtest,
            StorageConfig { page_size: 512, byte_budget: 4 * 512 },
        );
        let (mut meter, mut breakdown) = (Meter::new(), MeterBreakdown::new());
        let mut height = 0u64;
        let error = loop {
            let outputs: Vec<(u8, u64)> = (0..30).map(|i| (i as u8, 100)).collect();
            match set.try_ingest_block(
                &[pay_tx(None, &outputs)],
                height,
                &mut meter,
                &mut breakdown,
            ) {
                Ok(()) => height += 1,
                Err(error) => break error,
            }
            assert!(height < 1000, "budget must eventually exhaust");
        };
        assert!(matches!(error, StorageError::BudgetExhausted { .. }), "{error:?}");
        assert_eq!(set.storage_stats().budget_headroom, 0);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn infallible_ingest_panics_on_budget_exhaustion() {
        let mut set = UtxoSet::with_config(
            Network::Regtest,
            StorageConfig { page_size: 512, byte_budget: 2 * 512 },
        );
        let (mut meter, mut breakdown) = (Meter::new(), MeterBreakdown::new());
        for height in 0..1000u64 {
            let outputs: Vec<(u8, u64)> = (0..30).map(|i| (i as u8, 100)).collect();
            set.ingest_block(&[pay_tx(None, &outputs)], height, &mut meter, &mut breakdown);
        }
    }

    #[test]
    fn serialize_roundtrips_and_is_layout_independent() {
        let (mut set, mut meter, mut breakdown) = fresh();
        for height in 0..30u64 {
            let tx = pay_tx(None, &[((height % 5) as u8, 100 + height), (9, 7)]);
            set.ingest_block(&[tx], height, &mut meter, &mut breakdown);
        }
        let bytes = set.serialize();
        assert_eq!(bytes, set.serialize(), "serialization is deterministic");

        let restored = UtxoSet::deserialize(&bytes).unwrap();
        assert_eq!(restored.len(), set.len());
        assert_eq!(restored.next_height(), set.next_height());
        assert_eq!(restored.network(), set.network());
        for n in 0..5u8 {
            assert_eq!(
                restored.utxos_of(&addr(n), &mut Meter::new()),
                set.utxos_of(&addr(n), &mut Meter::new()),
                "address {n}"
            );
        }
        // Round-trip is byte-identical and so is the state hash, even
        // though the restored set's page layout history differs.
        assert_eq!(restored.serialize(), bytes);
        assert_eq!(restored.state_hash(), set.state_hash());
    }

    #[test]
    fn deserialize_rejects_corrupt_snapshots() {
        let (mut set, mut meter, mut breakdown) = fresh();
        set.ingest_block(&[pay_tx(None, &[(1, 5)])], 0, &mut meter, &mut breakdown);
        let good = set.serialize();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(UtxoSet::deserialize(&bad_magic).is_err());

        let mut bad_version = good.clone();
        bad_version[9] = 0xFF;
        assert!(UtxoSet::deserialize(&bad_version).is_err());

        assert!(UtxoSet::deserialize(&good[..good.len() - 3]).is_err(), "truncation");

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(UtxoSet::deserialize(&trailing).is_err(), "trailing bytes");

        assert!(UtxoSet::deserialize(&good).is_ok(), "the original still parses");
    }

    #[test]
    fn fig6_breakdown_split_is_roughly_even_on_balanced_blocks() {
        let (mut set, mut meter, mut breakdown) = fresh();
        // Block 0: create 50 outputs.
        let creators: Vec<Transaction> =
            (0..50).map(|i| pay_tx(None, &[(i as u8, 100)])).collect();
        set.ingest_block(&creators, 0, &mut meter, &mut breakdown);
        // Block 1: spend all 50, creating 50 new ones.
        let spends: Vec<Transaction> = creators
            .iter()
            .enumerate()
            .map(|(i, c)| pay_tx(Some(OutPoint::new(c.txid(), 0)), &[(200 - i as u8, 90)]))
            .collect();
        let mut block1 = MeterBreakdown::new();
        set.ingest_block(&spends, 1, &mut meter, &mut block1);
        let insert = block1.get("output_insertion") as f64;
        let remove = block1.get("input_removal") as f64;
        let share = insert / (insert + remove);
        assert!((0.35..0.65).contains(&share), "insert share {share}");
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Ingesting creator blocks then spending everything returns
        /// the set to empty: conservation of UTXOs.
        #[test]
        fn create_then_spend_all() {
            testkit::check(0xC4_0001, testkit::DEFAULT_CASES, |rng| {
                let values = testkit::vec_with(rng, 1..20, |r| testkit::u64_in(r, 1..10_000));
                let (mut set, mut meter, mut breakdown) = fresh();
                let creators: Vec<Transaction> = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| pay_tx(None, &[((i % 250) as u8, *v)]))
                    .collect();
                set.ingest_block(&creators, 0, &mut meter, &mut breakdown);
                assert_eq!(set.len(), values.len());

                let spends: Vec<Transaction> = creators
                    .iter()
                    .map(|c| {
                        let mut tx = pay_tx(Some(OutPoint::new(c.txid(), 0)), &[(0, 1)]);
                        tx.outputs[0].script_pubkey = Script::new_op_return(b"burn");
                        tx
                    })
                    .collect();
                set.ingest_block(&spends, 1, &mut meter, &mut breakdown);
                assert_eq!(set.len(), 0);
                assert_eq!(set.address_count(), 0);
            });
        }
    }
}

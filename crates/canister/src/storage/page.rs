//! Fixed-size pages allocated against an explicit byte budget — the
//! simulation's stand-in for IC stable memory.

use std::fmt;

use super::{StorageConfig, StorageError};

/// Sentinel page id: "no page" (empty tree root, last leaf's next link).
pub(crate) const NO_PAGE: u32 = u32::MAX;

/// In-page offsets are encoded as `u16`, so a page must fit one.
const MIN_PAGE_SIZE: usize = 512;
const MAX_PAGE_SIZE: usize = 32_768;

/// A growable arena of fixed-size zeroed pages with a hard byte cap.
///
/// Pages are identified by dense `u32` ids in allocation order, which
/// makes every layout decision a deterministic function of the operation
/// sequence. Pages are never reclaimed (stable memory does not shrink);
/// emptied cells are reused in place by later inserts.
#[derive(Clone)]
pub struct PagePool {
    config: StorageConfig,
    pages: Vec<Box<[u8]>>,
}

impl PagePool {
    /// Creates an empty pool. `config.page_size` is clamped to
    /// `[512, 32768]`; no pages are allocated until first use, so an
    /// empty pool reserves zero bytes.
    pub fn new(mut config: StorageConfig) -> PagePool {
        config.page_size = config.page_size.clamp(MIN_PAGE_SIZE, MAX_PAGE_SIZE);
        PagePool { config, pages: Vec::new() }
    }

    /// The (clamped) configuration the pool was built with.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.config.page_size
    }

    /// Pages currently allocated.
    pub fn pages_allocated(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Bytes counted against the budget: `pages_allocated × page_size`.
    pub fn bytes_reserved(&self) -> u64 {
        self.pages.len() as u64 * self.config.page_size as u64
    }

    /// Budget minus reserved bytes.
    pub fn budget_headroom(&self) -> u64 {
        self.config.byte_budget.saturating_sub(self.bytes_reserved())
    }

    /// Whether `extra` more pages fit under the budget. Mutating tree
    /// operations pre-flight their worst-case page need with this so a
    /// budget failure happens *before* any page is touched.
    pub(crate) fn can_allocate(&self, extra: usize) -> bool {
        let wanted = (self.pages.len() + extra) as u64 * self.config.page_size as u64;
        wanted <= self.config.byte_budget
    }

    /// Describes the failed allocation of `extra` pages.
    pub(crate) fn budget_error(&self, extra: usize) -> StorageError {
        StorageError::BudgetExhausted {
            byte_budget: self.config.byte_budget,
            bytes_reserved: self.bytes_reserved(),
            bytes_needed: extra as u64 * self.config.page_size as u64,
        }
    }

    /// Allocates one zeroed page.
    pub(crate) fn allocate(&mut self) -> Result<u32, StorageError> {
        if !self.can_allocate(1) {
            return Err(self.budget_error(1));
        }
        self.pages.push(vec![0u8; self.config.page_size].into_boxed_slice());
        Ok((self.pages.len() - 1) as u32)
    }

    /// Read access to a page. Page ids only come from [`allocate`]
    /// results stored in tree nodes, so the index is always in bounds.
    ///
    /// [`allocate`]: PagePool::allocate
    pub(crate) fn page(&self, id: u32) -> &[u8] {
        &self.pages[id as usize]
    }

    /// Write access to a page. Same invariant as [`PagePool::page`]: ids
    /// only come from [`allocate`](PagePool::allocate) results stored in
    /// tree nodes, so the index is always in bounds.
    pub(crate) fn page_mut(&mut self, id: u32) -> &mut [u8] {
        &mut self.pages[id as usize]
    }
}

impl fmt::Debug for PagePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagePool")
            .field("page_size", &self.config.page_size)
            .field("byte_budget", &self.config.byte_budget)
            .field("pages_allocated", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_reserves_nothing() {
        let pool = PagePool::new(StorageConfig::default());
        assert_eq!(pool.bytes_reserved(), 0);
        assert_eq!(pool.pages_allocated(), 0);
        assert_eq!(pool.budget_headroom(), StorageConfig::default().byte_budget);
    }

    #[test]
    fn allocation_stops_at_the_budget() {
        let mut pool =
            PagePool::new(StorageConfig { page_size: 1024, byte_budget: 3 * 1024 });
        for expected in 0..3u32 {
            assert_eq!(pool.allocate(), Ok(expected));
        }
        assert!(!pool.can_allocate(1));
        let err = pool.allocate().unwrap_err();
        assert_eq!(
            err,
            StorageError::BudgetExhausted {
                byte_budget: 3 * 1024,
                bytes_reserved: 3 * 1024,
                bytes_needed: 1024,
            }
        );
        assert_eq!(pool.budget_headroom(), 0);
    }

    #[test]
    fn page_size_is_clamped_to_u16_offsets() {
        let pool = PagePool::new(StorageConfig { page_size: 1 << 20, byte_budget: 1 << 30 });
        assert_eq!(pool.page_size(), 32_768);
        let pool = PagePool::new(StorageConfig { page_size: 1, byte_budget: 1 << 30 });
        assert_eq!(pool.page_size(), 512);
    }

    #[test]
    fn pages_start_zeroed_and_are_independent() {
        let mut pool =
            PagePool::new(StorageConfig { page_size: 512, byte_budget: 1 << 20 });
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.page_mut(a)[0] = 0xAB;
        assert_eq!(pool.page(b)[0], 0);
        assert_eq!(pool.page(a)[0], 0xAB);
        let cloned = pool.clone();
        assert_eq!(cloned.page(a)[0], 0xAB);
    }
}

//! Paged, bounded-memory storage engine beneath the stable UTXO set.
//!
//! The production Bitcoin canister does not keep its ≈ 100 GiB state
//! (Figure 5) in heap structures: it lives in *stable memory*, addressed
//! as fixed-size pages, with B-tree maps layered on top and an explicit
//! allocation budget (the `memory.rs` / `utxo_set/` split). This module
//! reproduces that shape at simulation scale:
//!
//! * [`page`] — a [`PagePool`]: fixed-size zero-initialised pages
//!   allocated against an explicit byte budget. Allocation past the
//!   budget fails with [`StorageError::BudgetExhausted`] — it never
//!   silently grows the heap.
//! * [`btree`] — [`PagedMap`]: a B+-tree keyed map whose nodes are pool
//!   pages. Variable-length keys and values are stored as sorted cells
//!   inside leaf pages; interior pages route by separator keys. Range
//!   scans walk a linked list of leaves, so pagination stays O(page).
//!
//! Both of `UtxoSet`'s maps (`by_outpoint` and the `by_address`
//! secondary index) share one pool, so [`StorageStats`] reports the
//! engine's true footprint: pages allocated, bytes used, and headroom
//! against the budget. Pages are never reclaimed once allocated —
//! production stable memory does not shrink either — but freed cells are
//! reused in place by later inserts.
//!
//! All layouts are deterministic functions of the insert/remove sequence:
//! same operations ⇒ byte-identical pages, which is what the storage
//! determinism gate in `scripts/verify.sh` checks.

pub(crate) mod btree;
pub(crate) mod codec;
pub(crate) mod page;

use std::fmt;

pub use btree::PagedMap;
pub use page::PagePool;

/// Default page size: 8 KiB. Large enough that a worst-case standard
/// script still fits in a cell (cells are capped at a quarter page so
/// splits always succeed), small enough that the memmove on an in-page
/// insert stays cheap.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Default byte budget: 4 GiB of modeled stable memory. Generous enough
/// that every in-repo workload fits; benchmarks and tests pass explicit
/// tighter budgets via [`StorageConfig`].
pub const DEFAULT_BYTE_BUDGET: u64 = 4 << 30;

/// Sizing of the paged store: how big pages are and how many bytes of
/// them may ever be allocated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageConfig {
    /// Bytes per page. Clamped to `[512, 32768]` by [`PagePool::new`]
    /// (in-page offsets are 16-bit).
    pub page_size: usize,
    /// Hard cap on total page bytes; allocation past it fails loudly.
    pub byte_budget: u64,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig { page_size: DEFAULT_PAGE_SIZE, byte_budget: DEFAULT_BYTE_BUDGET }
    }
}

/// Why a storage operation could not complete.
///
/// Any error leaves the *map structure* intact but may leave a compound
/// update (e.g. a UTXO insert plus its index entry) half-applied, so
/// callers treat errors as fatal for the affected state — fail loudly,
/// never silently continue past the budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The byte budget cannot cover the pages this operation needs.
    BudgetExhausted {
        /// The configured cap.
        byte_budget: u64,
        /// Page bytes already allocated.
        bytes_reserved: u64,
        /// Bytes the failed allocation asked for.
        bytes_needed: u64,
    },
    /// A key/value pair too large for a page cell (cells are capped at a
    /// quarter page so node splits always succeed).
    EntryTooLarge {
        /// Encoded cell size of the rejected entry.
        entry_bytes: usize,
        /// Largest admissible cell for the configured page size.
        max_bytes: usize,
    },
    /// A serialized snapshot failed validation during deserialization.
    Corrupt(&'static str),
    /// A stable block arrived at a height other than the expected next
    /// one. Stable blocks extend a single finalized chain, so ingestion
    /// order is a caller-upheld protocol invariant — violating it would
    /// corrupt the height-keyed address index.
    OutOfOrderIngestion {
        /// The next height the set expects.
        expected: u64,
        /// The height the caller tried to ingest.
        got: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BudgetExhausted { byte_budget, bytes_reserved, bytes_needed } => {
                write!(
                    f,
                    "byte budget exhausted: {bytes_reserved} of {byte_budget} bytes reserved, \
                     {bytes_needed} more needed"
                )
            }
            StorageError::EntryTooLarge { entry_bytes, max_bytes } => {
                write!(f, "entry of {entry_bytes} bytes exceeds the {max_bytes}-byte cell cap")
            }
            StorageError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            StorageError::OutOfOrderIngestion { expected, got } => {
                write!(
                    f,
                    "stable blocks must be ingested in order: expected height {expected}, \
                     got {got}"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Point-in-time footprint of the paged store, exported as canister
/// gauges (`canister_storage_*`) and in the fig5 bench report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Bytes per page.
    pub page_size: u64,
    /// The configured allocation cap.
    pub byte_budget: u64,
    /// Pages currently allocated.
    pub pages_allocated: u64,
    /// `pages_allocated × page_size` — what counts against the budget.
    pub bytes_reserved: u64,
    /// Live payload bytes: node headers plus entry cells (interior
    /// separator keys excluded, so this is a tight lower bound).
    pub bytes_used: u64,
    /// Budget minus reserved bytes.
    pub budget_headroom: u64,
    /// Entries across both maps.
    pub entries: u64,
    /// Serialized key+value bytes across both maps.
    pub entry_bytes: u64,
}

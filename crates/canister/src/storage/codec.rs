//! Deterministic byte encodings for the UTXO set's storage keys and
//! values.
//!
//! The B+-tree orders keys as plain byte strings, so every encoding here
//! is designed to make lexicographic byte order coincide with the domain
//! order the query plane relies on:
//!
//! * outpoint key: `txid ‖ vout(BE)` — grouped by transaction, ascending
//!   output index.
//! * address-index key: `address-prefix ‖ (u64::MAX − height)(BE) ‖
//!   txid ‖ vout(BE)` — all entries of an address are contiguous, sorted
//!   height-descending then by outpoint: exactly `get_utxos` pagination
//!   order (§III-C).
//!
//! The address prefix is `network-tag ‖ kind-tag ‖ payload`. The kind
//! tag determines the payload length (20 or 32 bytes), so no prefix is a
//! proper prefix of a different address's — prefix scans can never bleed
//! into a neighbouring address.

use icbtc_bitcoin::{Address, AddressKind, Amount, Network, OutPoint, Txid};

use super::StorageError;

/// Encoded outpoint key length: 32-byte txid + 4-byte vout.
pub(crate) const OUTPOINT_KEY_LEN: usize = 36;

/// Fixed tail of an address-index key: 8-byte reverse height + outpoint.
pub(crate) const INDEX_KEY_SUFFIX_LEN: usize = 8 + OUTPOINT_KEY_LEN;

pub(crate) fn outpoint_key(outpoint: &OutPoint) -> [u8; OUTPOINT_KEY_LEN] {
    let mut key = [0u8; OUTPOINT_KEY_LEN];
    key[..32].copy_from_slice(&outpoint.txid.0);
    key[32..].copy_from_slice(&outpoint.vout.to_be_bytes());
    key
}

fn decode_outpoint(bytes: &[u8]) -> OutPoint {
    let mut txid = [0u8; 32];
    txid.copy_from_slice(&bytes[..32]);
    let vout = u32::from_be_bytes([bytes[32], bytes[33], bytes[34], bytes[35]]);
    OutPoint::new(Txid(txid), vout)
}

/// Value stored under an outpoint key: `height(BE) ‖ amount(BE) ‖
/// script bytes` (the script is the remainder — no length prefix).
pub(crate) fn utxo_value(height: u64, value: Amount, script: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + script.len());
    out.extend_from_slice(&height.to_be_bytes());
    out.extend_from_slice(&value.to_sat().to_be_bytes());
    out.extend_from_slice(script);
    out
}

/// Decodes [`utxo_value`] bytes: `(height, amount, script)`.
pub(crate) fn decode_utxo_value(bytes: &[u8]) -> (u64, Amount, &[u8]) {
    let mut height = [0u8; 8];
    height.copy_from_slice(&bytes[..8]);
    let mut sat = [0u8; 8];
    sat.copy_from_slice(&bytes[8..16]);
    (u64::from_be_bytes(height), Amount::from_sat(u64::from_be_bytes(sat)), &bytes[16..])
}

pub(crate) fn network_tag(network: Network) -> u8 {
    match network {
        Network::Mainnet => 0,
        Network::Testnet => 1,
        Network::Regtest => 2,
    }
}

pub(crate) fn network_from_tag(tag: u8) -> Result<Network, StorageError> {
    match tag {
        0 => Ok(Network::Mainnet),
        1 => Ok(Network::Testnet),
        2 => Ok(Network::Regtest),
        _ => Err(StorageError::Corrupt("unknown network tag")),
    }
}

/// The per-address prefix of index keys: `network ‖ kind ‖ payload`.
pub(crate) fn address_prefix(address: &Address) -> Vec<u8> {
    let mut out = Vec::with_capacity(34);
    out.push(network_tag(address.network));
    match &address.kind {
        AddressKind::P2pkh(h) => {
            out.push(0);
            out.extend_from_slice(h);
        }
        AddressKind::P2sh(h) => {
            out.push(1);
            out.extend_from_slice(h);
        }
        AddressKind::P2wpkh(h) => {
            out.push(2);
            out.extend_from_slice(h);
        }
        AddressKind::P2wsh(h) => {
            out.push(3);
            out.extend_from_slice(h);
        }
        AddressKind::P2tr(k) => {
            out.push(4);
            out.extend_from_slice(k);
        }
    }
    out
}

/// Full address-index key for one `(address, height, outpoint)` entry.
pub(crate) fn index_key(address: &Address, height: u64, outpoint: &OutPoint) -> Vec<u8> {
    let mut out = address_prefix(address);
    out.extend_from_slice(&(u64::MAX - height).to_be_bytes());
    out.extend_from_slice(&outpoint_key(outpoint));
    out
}

/// Decodes the fixed suffix of an index key: `(height, outpoint)`.
pub(crate) fn decode_index_key_suffix(key: &[u8]) -> (u64, OutPoint) {
    let suffix = &key[key.len() - INDEX_KEY_SUFFIX_LEN..];
    let mut reverse = [0u8; 8];
    reverse.copy_from_slice(&suffix[..8]);
    (u64::MAX - u64::from_be_bytes(reverse), decode_outpoint(&suffix[8..]))
}

/// Value stored under an index key: the output's amount, big-endian.
pub(crate) fn amount_value(value: Amount) -> [u8; 8] {
    value.to_sat().to_be_bytes()
}

pub(crate) fn decode_amount_value(bytes: &[u8]) -> Amount {
    let mut sat = [0u8; 8];
    sat.copy_from_slice(&bytes[..8]);
    Amount::from_sat(u64::from_be_bytes(sat))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outpoint(byte: u8, vout: u32) -> OutPoint {
        OutPoint::new(Txid([byte; 32]), vout)
    }

    #[test]
    fn outpoint_keys_order_like_outpoints() {
        let a = outpoint(1, 5);
        let b = outpoint(1, 6);
        let c = outpoint(2, 0);
        assert!(outpoint_key(&a) < outpoint_key(&b));
        assert!(outpoint_key(&b) < outpoint_key(&c));
        assert_eq!(decode_outpoint(&outpoint_key(&a)), a);
    }

    #[test]
    fn index_keys_sort_height_descending_then_outpoint() {
        let addr = Address::new(Network::Regtest, AddressKind::P2wpkh([7; 20]));
        let newer = index_key(&addr, 100, &outpoint(1, 0));
        let older = index_key(&addr, 99, &outpoint(1, 0));
        let sibling = index_key(&addr, 100, &outpoint(1, 1));
        assert!(newer < older, "higher blocks come first");
        assert!(newer < sibling, "then outpoint ascending");
        let (height, op) = decode_index_key_suffix(&newer);
        assert_eq!((height, op), (100, outpoint(1, 0)));
    }

    #[test]
    fn address_prefixes_are_prefix_free() {
        // Same 20-byte payload under different kinds, plus a 32-byte kind
        // whose payload starts with those same 20 bytes.
        let payload20 = [9u8; 20];
        let mut payload32 = [0u8; 32];
        payload32[..20].copy_from_slice(&payload20);
        let kinds = [
            AddressKind::P2pkh(payload20),
            AddressKind::P2sh(payload20),
            AddressKind::P2wpkh(payload20),
            AddressKind::P2wsh(payload32),
            AddressKind::P2tr(payload32),
        ];
        let prefixes: Vec<Vec<u8>> = kinds
            .iter()
            .map(|kind| address_prefix(&Address::new(Network::Mainnet, *kind)))
            .collect();
        for (i, a) in prefixes.iter().enumerate() {
            for (j, b) in prefixes.iter().enumerate() {
                if i != j {
                    assert!(!b.starts_with(a), "prefix {i} is a prefix of {j}");
                }
            }
        }
        // Different networks never collide either.
        let mainnet = address_prefix(&Address::new(Network::Mainnet, kinds[0]));
        let regtest = address_prefix(&Address::new(Network::Regtest, kinds[0]));
        assert_ne!(mainnet, regtest);
    }

    #[test]
    fn utxo_value_roundtrips_script_of_any_length() {
        for script_len in [0usize, 1, 22, 34, 520] {
            let script = vec![0x51; script_len];
            let bytes = utxo_value(77, Amount::from_sat(12_345), &script);
            assert_eq!(bytes.len(), 16 + script_len);
            let (height, amount, decoded) = decode_utxo_value(&bytes);
            assert_eq!(height, 77);
            assert_eq!(amount, Amount::from_sat(12_345));
            assert_eq!(decoded, &script[..]);
        }
    }

    #[test]
    fn network_tags_roundtrip() {
        for network in [Network::Mainnet, Network::Testnet, Network::Regtest] {
            assert_eq!(network_from_tag(network_tag(network)), Ok(network));
        }
        assert!(network_from_tag(9).is_err());
    }
}

//! A B+-tree keyed map whose nodes are [`PagePool`] pages.
//!
//! Keys and values are arbitrary byte strings ordered lexicographically
//! (the codecs in [`super::codec`] are designed so that byte order equals
//! the domain order). Entries live exclusively in leaf pages as sorted
//! variable-length cells; interior pages hold separator keys and child
//! page ids. Leaves are chained through a `next` pointer, so a range scan
//! is one tree descent plus a linked-list walk — O(page) per page served,
//! independent of the map's size.
//!
//! Node layout (all integers little-endian):
//!
//! ```text
//! leaf:     [type=1][count u16][used u16][next u32]     then cells:
//!           [klen u16][vlen u16][key][value]
//! interior: [type=2][count u16][used u16][child0 u32]   then cells:
//!           [klen u16][child u32][key]
//! ```
//!
//! `used` is the byte offset one past the last cell. An interior node
//! with cells `(k1,c1)…(kn,cn)` routes `key < k1` to `child0` and
//! `ki ≤ key < ki+1` to `ci`. A cell is capped at a quarter page
//! ([`max_entry_bytes`]), which guarantees both halves of any overflow
//! split fit in fresh pages. Deletion never merges or frees nodes —
//! emptied leaves stay chained and are refilled by later inserts — so no
//! operation other than a split ever allocates.

// icbtc-lint: allow-file(unmetered-loop) -- invariant: every loop here walks cells of a single 8 KiB page or descends a tree of depth O(log n); the per-entry cost is charged by UtxoSet at the call boundary (INSERT_OUTPUT_BASE / REMOVE_INPUT_BASE / STABLE_UTXO_FETCH), calibrated to include the page walks

use super::page::{PagePool, NO_PAGE};
use super::StorageError;

const NODE_LEAF: u8 = 1;
const NODE_INNER: u8 = 2;

/// Node header bytes: type(1) + count(2) + used(2) + link(4). The link is
/// the next-leaf pointer in leaves and the leftmost child in interior
/// nodes.
pub(crate) const NODE_HEADER_BYTES: usize = 9;

/// Largest admissible leaf cell (`4 + key + value`) for a page size: a
/// quarter of the cell area, so a split of an overflowing node always
/// yields two halves that fit.
pub(crate) fn max_entry_bytes(page_size: usize) -> usize {
    (page_size - NODE_HEADER_BYTES) / 4
}

fn u16_at(page: &[u8], off: usize) -> usize {
    u16::from_le_bytes([page[off], page[off + 1]]) as usize
}

fn u32_at(page: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([page[off], page[off + 1], page[off + 2], page[off + 3]])
}

fn put_u16(page: &mut [u8], off: usize, v: usize) {
    page[off..off + 2].copy_from_slice(&(v as u16).to_le_bytes());
}

fn put_u32(page: &mut [u8], off: usize, v: u32) {
    page[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn node_count(page: &[u8]) -> usize {
    u16_at(page, 1)
}

fn node_used(page: &[u8]) -> usize {
    u16_at(page, 3)
}

fn node_link(page: &[u8]) -> u32 {
    u32_at(page, 5)
}

fn init_node(page: &mut [u8], node_type: u8, link: u32) {
    page[0] = node_type;
    put_u16(page, 1, 0);
    put_u16(page, 3, NODE_HEADER_BYTES);
    put_u32(page, 5, link);
}

/// Decodes the leaf cell at `off`: `(key, value, next_cell_offset)`.
fn leaf_cell(page: &[u8], off: usize) -> (&[u8], &[u8], usize) {
    let klen = u16_at(page, off);
    let vlen = u16_at(page, off + 2);
    let key_start = off + 4;
    let val_start = key_start + klen;
    (&page[key_start..val_start], &page[val_start..val_start + vlen], val_start + vlen)
}

/// Finds `key` in a leaf: `(found, cell_offset, cell_index)`. On a miss
/// the offset/index are the sorted insertion position.
fn leaf_seek(page: &[u8], key: &[u8]) -> (bool, usize, usize) {
    let used = node_used(page);
    let mut off = NODE_HEADER_BYTES;
    let mut idx = 0;
    while off < used {
        let (cell_key, _, next) = leaf_cell(page, off);
        match cell_key.cmp(key) {
            std::cmp::Ordering::Less => {
                off = next;
                idx += 1;
            }
            std::cmp::Ordering::Equal => return (true, off, idx),
            std::cmp::Ordering::Greater => return (false, off, idx),
        }
    }
    (false, off, idx)
}

/// Routes `key` through an interior node: `(child_page, child_index)`
/// where index 0 is the leftmost child.
fn inner_search(page: &[u8], key: &[u8]) -> (u32, usize) {
    let used = node_used(page);
    let mut child = node_link(page);
    let mut idx = 0;
    let mut off = NODE_HEADER_BYTES;
    while off < used {
        let klen = u16_at(page, off);
        let sep = &page[off + 6..off + 6 + klen];
        if key < sep {
            break;
        }
        child = u32_at(page, off + 2);
        idx += 1;
        off += 6 + klen;
    }
    (child, idx)
}

/// Byte offset of interior cell `idx` (or `used` when `idx == count`).
fn inner_cell_offset(page: &[u8], idx: usize) -> usize {
    let mut off = NODE_HEADER_BYTES;
    for _ in 0..idx {
        off += 6 + u16_at(page, off);
    }
    off
}

/// Removes `len` cell bytes at `off` by sliding the tail left.
fn splice_remove(page: &mut [u8], off: usize, len: usize) {
    let used = node_used(page);
    let count = node_count(page);
    page.copy_within(off + len..used, off);
    put_u16(page, 3, used - len);
    put_u16(page, 1, count - 1);
}

/// Inserts a leaf cell at `off` by sliding the tail right. The caller
/// has checked it fits.
fn splice_leaf_insert(page: &mut [u8], off: usize, key: &[u8], value: &[u8]) {
    let used = node_used(page);
    let count = node_count(page);
    let cell = 4 + key.len() + value.len();
    page.copy_within(off..used, off + cell);
    put_u16(page, off, key.len());
    put_u16(page, off + 2, value.len());
    page[off + 4..off + 4 + key.len()].copy_from_slice(key);
    page[off + 4 + key.len()..off + cell].copy_from_slice(value);
    put_u16(page, 3, used + cell);
    put_u16(page, 1, count + 1);
}

/// Inserts an interior cell at `off`. The caller has checked it fits.
fn splice_inner_insert(page: &mut [u8], off: usize, sep: &[u8], child: u32) {
    let used = node_used(page);
    let count = node_count(page);
    let cell = 6 + sep.len();
    page.copy_within(off..used, off + cell);
    put_u16(page, off, sep.len());
    put_u32(page, off + 2, child);
    page[off + 6..off + cell].copy_from_slice(sep);
    put_u16(page, 3, used + cell);
    put_u16(page, 1, count + 1);
}

/// Parses all cells of a leaf (split path only — steady-state inserts
/// stay in place and never allocate).
fn leaf_cells(page: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let used = node_used(page);
    let mut cells = Vec::with_capacity(node_count(page));
    let mut off = NODE_HEADER_BYTES;
    while off < used {
        let (key, value, next) = leaf_cell(page, off);
        cells.push((key.to_vec(), value.to_vec()));
        off = next;
    }
    cells
}

fn write_leaf(page: &mut [u8], cells: &[(Vec<u8>, Vec<u8>)], next: u32) {
    init_node(page, NODE_LEAF, next);
    let mut off = NODE_HEADER_BYTES;
    for (key, value) in cells {
        put_u16(page, off, key.len());
        put_u16(page, off + 2, value.len());
        page[off + 4..off + 4 + key.len()].copy_from_slice(key);
        off += 4 + key.len();
        page[off..off + value.len()].copy_from_slice(value);
        off += value.len();
    }
    put_u16(page, 1, cells.len());
    put_u16(page, 3, off);
}

/// Parses an interior node into `(leftmost_child, cells)`.
fn inner_cells(page: &[u8]) -> (u32, Vec<(Vec<u8>, u32)>) {
    let used = node_used(page);
    let mut cells = Vec::with_capacity(node_count(page));
    let mut off = NODE_HEADER_BYTES;
    while off < used {
        let klen = u16_at(page, off);
        let child = u32_at(page, off + 2);
        cells.push((page[off + 6..off + 6 + klen].to_vec(), child));
        off += 6 + klen;
    }
    (node_link(page), cells)
}

fn write_inner(page: &mut [u8], first_child: u32, cells: &[(Vec<u8>, u32)]) {
    init_node(page, NODE_INNER, first_child);
    let mut off = NODE_HEADER_BYTES;
    for (sep, child) in cells {
        put_u16(page, off, sep.len());
        put_u32(page, off + 2, *child);
        page[off + 6..off + 6 + sep.len()].copy_from_slice(sep);
        off += 6 + sep.len();
    }
    put_u16(page, 1, cells.len());
    put_u16(page, 3, off);
}

/// Picks the split index for an overflowing cell list: the first index
/// past the byte midpoint, clamped so both halves are non-empty. With
/// cells capped at a quarter page, both halves always fit a fresh page.
fn split_point(sizes: impl Iterator<Item = usize>, len: usize) -> usize {
    let sizes: Vec<usize> = sizes.collect();
    let total: usize = sizes.iter().sum();
    let mut acc = 0;
    for (i, size) in sizes.iter().enumerate() {
        acc += size;
        if acc >= total / 2 && i + 1 < len {
            return (i + 1).max(1);
        }
    }
    len - 1
}

/// A B+-tree map over pages of an external [`PagePool`].
///
/// The handle itself is three integers; all node state lives in the pool,
/// which is passed into every operation. That lets several maps (the
/// UTXO set's outpoint map and address index) share one budgeted pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct PagedMap {
    root: u32,
    len: u64,
    entry_bytes: u64,
}

impl PagedMap {
    /// Creates an empty map. No pages are allocated until first insert.
    pub fn new() -> PagedMap {
        PagedMap { root: NO_PAGE, len: 0, entry_bytes: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Serialized key+value bytes across all entries.
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }

    /// Bytes the entries occupy as leaf cells (entry bytes plus the
    /// 4-byte cell header each).
    pub fn cell_bytes(&self) -> u64 {
        self.entry_bytes + 4 * self.len
    }

    /// Descends to the leaf page that would hold `key`.
    fn find_leaf(&self, pool: &PagePool, key: &[u8]) -> u32 {
        let mut page_id = self.root;
        loop {
            let page = pool.page(page_id);
            if page[0] == NODE_LEAF {
                return page_id;
            }
            page_id = inner_search(page, key).0;
        }
    }

    /// Looks up `key`, returning the stored value in place.
    pub fn get<'a>(&self, pool: &'a PagePool, key: &[u8]) -> Option<&'a [u8]> {
        if self.root == NO_PAGE {
            return None;
        }
        let page = pool.page(self.find_leaf(pool, key));
        let (found, off, _) = leaf_seek(page, key);
        if !found {
            return None;
        }
        let (_, value, _) = leaf_cell(page, off);
        Some(value)
    }

    /// Inserts `key → value`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// [`StorageError::EntryTooLarge`] if the cell exceeds a quarter
    /// page; [`StorageError::BudgetExhausted`] if a node split would
    /// allocate past the pool budget. Budget checks run *before* any
    /// page is modified, so a failed insert leaves the map unchanged.
    pub fn insert(
        &mut self,
        pool: &mut PagePool,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, StorageError> {
        let cell_len = 4 + key.len() + value.len();
        let max = max_entry_bytes(pool.page_size());
        if cell_len > max {
            return Err(StorageError::EntryTooLarge { entry_bytes: cell_len, max_bytes: max });
        }
        if self.root == NO_PAGE {
            let id = pool.allocate()?;
            let page = pool.page_mut(id);
            init_node(page, NODE_LEAF, NO_PAGE);
            splice_leaf_insert(page, NODE_HEADER_BYTES, key, value);
            self.root = id;
            self.len = 1;
            self.entry_bytes = (key.len() + value.len()) as u64;
            return Ok(None);
        }

        // Descend, remembering which child we took at each interior node
        // so a split can push its separator into the right parent slot.
        let mut path: Vec<(u32, usize)> = Vec::new();
        let mut page_id = self.root;
        loop {
            let page = pool.page(page_id);
            if page[0] == NODE_LEAF {
                break;
            }
            let (child, idx) = inner_search(page, key);
            path.push((page_id, idx));
            page_id = child;
        }

        let page = pool.page(page_id);
        let used = node_used(page);
        let (found, off, idx) = leaf_seek(page, key);
        let mut old_value = None;
        let mut removed = 0usize;
        if found {
            let (_, value, next) = leaf_cell(page, off);
            old_value = Some(value.to_vec());
            removed = next - off;
        }

        if used - removed + cell_len <= pool.page_size() {
            // In-place fast path: at most two memmoves, no allocation.
            let page = pool.page_mut(page_id);
            if removed > 0 {
                splice_remove(page, off, removed);
            }
            splice_leaf_insert(page, off, key, value);
            self.account_insert(key, value, &old_value);
            return Ok(old_value);
        }

        // The leaf must split. Worst case this allocates one page per
        // tree level plus a new root; pre-flight the budget so nothing
        // is half-written when it fails.
        if !pool.can_allocate(path.len() + 2) {
            return Err(pool.budget_error(path.len() + 2));
        }
        let mut cells = leaf_cells(page);
        if found {
            cells[idx] = (key.to_vec(), value.to_vec());
        } else {
            cells.insert(idx, (key.to_vec(), value.to_vec()));
        }
        let next = node_link(page);
        let split = split_point(cells.iter().map(|(k, v)| 4 + k.len() + v.len()), cells.len());
        let right_id = pool.allocate()?;
        let sep = cells[split].0.clone();
        write_leaf(pool.page_mut(page_id), &cells[..split], right_id);
        write_leaf(pool.page_mut(right_id), &cells[split..], next);
        self.account_insert(key, value, &old_value);
        self.promote(pool, path, sep, right_id)?;
        Ok(old_value)
    }

    fn account_insert(&mut self, key: &[u8], value: &[u8], old_value: &Option<Vec<u8>>) {
        match old_value {
            Some(old) => {
                self.entry_bytes = self.entry_bytes - old.len() as u64 + value.len() as u64;
            }
            None => {
                self.len += 1;
                self.entry_bytes += (key.len() + value.len()) as u64;
            }
        }
    }

    /// Pushes a split's separator up the recorded path, splitting
    /// interior nodes (and finally the root) as needed. The budget was
    /// pre-flighted by `insert`, so allocations here cannot fail.
    fn promote(
        &mut self,
        pool: &mut PagePool,
        mut path: Vec<(u32, usize)>,
        mut sep: Vec<u8>,
        mut right: u32,
    ) -> Result<(), StorageError> {
        loop {
            let Some((page_id, child_idx)) = path.pop() else {
                let new_root = pool.allocate()?;
                let page = pool.page_mut(new_root);
                init_node(page, NODE_INNER, self.root);
                splice_inner_insert(page, NODE_HEADER_BYTES, &sep, right);
                self.root = new_root;
                return Ok(());
            };
            let page = pool.page(page_id);
            if node_used(page) + 6 + sep.len() <= pool.page_size() {
                let off = inner_cell_offset(page, child_idx);
                splice_inner_insert(pool.page_mut(page_id), off, &sep, right);
                return Ok(());
            }
            // Split the interior node: the byte-midpoint cell's key moves
            // up as the new separator, its child seeds the right node.
            let (first_child, mut cells) = inner_cells(page);
            cells.insert(child_idx, (sep, right));
            let split = split_point(cells.iter().map(|(k, _)| 6 + k.len()), cells.len());
            let right_id = pool.allocate()?;
            let promoted = cells[split].0.clone();
            let right_first = cells[split].1;
            write_inner(pool.page_mut(page_id), first_child, &cells[..split]);
            write_inner(pool.page_mut(right_id), right_first, &cells[split + 1..]);
            sep = promoted;
            right = right_id;
        }
    }

    /// Removes `key`, returning its value. Never allocates: emptied
    /// leaves stay chained (scans skip them) and refill on later inserts.
    pub fn remove(&mut self, pool: &mut PagePool, key: &[u8]) -> Option<Vec<u8>> {
        if self.root == NO_PAGE {
            return None;
        }
        let page_id = self.find_leaf(pool, key);
        let page = pool.page(page_id);
        let (found, off, _) = leaf_seek(page, key);
        if !found {
            return None;
        }
        let (cell_key, value, next) = leaf_cell(page, off);
        let old = value.to_vec();
        let entry = (cell_key.len() + old.len()) as u64;
        let cell = next - off;
        splice_remove(pool.page_mut(page_id), off, cell);
        self.len -= 1;
        self.entry_bytes -= entry;
        Some(old)
    }

    /// Iterates entries with `key ≥ start` in ascending key order:
    /// one descent, then a walk along the leaf chain.
    pub fn range_from<'a>(&self, pool: &'a PagePool, start: &[u8]) -> Scan<'a> {
        if self.root == NO_PAGE {
            return Scan { pool, page: NO_PAGE, offset: NODE_HEADER_BYTES };
        }
        let page_id = self.find_leaf(pool, start);
        let page = pool.page(page_id);
        let (_, off, _) = leaf_seek(page, start);
        Scan { pool, page: page_id, offset: off }
    }

    /// Iterates all entries in ascending key order.
    pub fn iter<'a>(&self, pool: &'a PagePool) -> Scan<'a> {
        self.range_from(pool, &[])
    }
}

/// Ascending iterator over `(key, value)` slices living in pool pages.
pub struct Scan<'a> {
    pool: &'a PagePool,
    page: u32,
    offset: usize,
}

impl<'a> Iterator for Scan<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<(&'a [u8], &'a [u8])> {
        loop {
            if self.page == NO_PAGE {
                return None;
            }
            let page = self.pool.page(self.page);
            if self.offset >= node_used(page) {
                self.page = node_link(page);
                self.offset = NODE_HEADER_BYTES;
                continue;
            }
            let (key, value, next) = leaf_cell(page, self.offset);
            self.offset = next;
            return Some((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageConfig;
    use std::collections::BTreeMap;

    fn small_pool() -> PagePool {
        // Tiny pages force deep trees and frequent splits.
        PagePool::new(StorageConfig { page_size: 512, byte_budget: 16 << 20 })
    }

    fn key(n: u64) -> Vec<u8> {
        n.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_replace_remove() {
        let mut pool = small_pool();
        let mut map = PagedMap::new();
        assert_eq!(map.insert(&mut pool, b"alpha", b"1"), Ok(None));
        assert_eq!(map.insert(&mut pool, b"beta", b"2"), Ok(None));
        assert_eq!(map.get(&pool, b"alpha"), Some(&b"1"[..]));
        assert_eq!(map.insert(&mut pool, b"alpha", b"one"), Ok(Some(b"1".to_vec())));
        assert_eq!(map.get(&pool, b"alpha"), Some(&b"one"[..]));
        assert_eq!(map.len(), 2);
        assert_eq!(map.remove(&mut pool, b"alpha"), Some(b"one".to_vec()));
        assert_eq!(map.get(&pool, b"alpha"), None);
        assert_eq!(map.remove(&mut pool, b"alpha"), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn splits_preserve_order_and_content() {
        let mut pool = small_pool();
        let mut map = PagedMap::new();
        // Interleaved insert order exercises left, right and middle splits.
        for n in (0..2000u64).step_by(2).chain((1..2000).step_by(2)) {
            map.insert(&mut pool, &key(n), &key(n * 7)).unwrap();
        }
        assert_eq!(map.len(), 2000);
        assert!(pool.pages_allocated() > 10, "tree must actually page out");
        for n in 0..2000u64 {
            assert_eq!(map.get(&pool, &key(n)), Some(&key(n * 7)[..]), "key {n}");
        }
        let keys: Vec<u64> = map
            .iter(&pool)
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(keys, (0..2000).collect::<Vec<u64>>());
    }

    #[test]
    fn range_from_lands_on_the_first_key_geq_start() {
        let mut pool = small_pool();
        let mut map = PagedMap::new();
        for n in (0..500u64).map(|n| n * 10) {
            map.insert(&mut pool, &key(n), b"v").unwrap();
        }
        let from_35: Vec<u64> = map
            .range_from(&pool, &key(35))
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .take(3)
            .collect();
        assert_eq!(from_35, vec![40, 50, 60]);
        // Exact hit starts at the key itself.
        let from_40: Vec<u64> = map
            .range_from(&pool, &key(40))
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .take(2)
            .collect();
        assert_eq!(from_40, vec![40, 50]);
        // Past the end yields nothing.
        assert_eq!(map.range_from(&pool, &key(1_000_000)).count(), 0);
    }

    #[test]
    fn emptied_leaves_are_skipped_by_scans_and_refilled() {
        let mut pool = small_pool();
        let mut map = PagedMap::new();
        for n in 0..600u64 {
            map.insert(&mut pool, &key(n), &[0u8; 24]).unwrap();
        }
        // Hollow out the middle so whole leaves go empty.
        for n in 150..450u64 {
            assert!(map.remove(&mut pool, &key(n)).is_some());
        }
        let pages_after_removal = pool.pages_allocated();
        let keys: Vec<u64> = map
            .iter(&pool)
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        let expected: Vec<u64> = (0..150).chain(450..600).collect();
        assert_eq!(keys, expected);
        // Re-inserting the hollowed range reuses the emptied cells
        // without growing the tree.
        for n in 150..450u64 {
            map.insert(&mut pool, &key(n), &[0u8; 24]).unwrap();
        }
        assert_eq!(pool.pages_allocated(), pages_after_removal);
        assert_eq!(map.len(), 600);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut pool = small_pool();
        let mut map = PagedMap::new();
        let max = max_entry_bytes(pool.page_size());
        let fat = vec![0xAA; max];
        let err = map.insert(&mut pool, b"k", &fat).unwrap_err();
        assert!(matches!(err, StorageError::EntryTooLarge { .. }), "{err:?}");
        assert_eq!(map.len(), 0);
        // Right at the cap is fine.
        let fits = vec![0xAA; max - 4 - 1];
        assert_eq!(map.insert(&mut pool, b"k", &fits), Ok(None));
    }

    #[test]
    fn budget_exhaustion_fails_before_mutating() {
        let mut pool = PagePool::new(StorageConfig { page_size: 512, byte_budget: 2 * 512 });
        let mut map = PagedMap::new();
        let mut n = 0u64;
        let err = loop {
            match map.insert(&mut pool, &key(n), &[0u8; 16]) {
                Ok(_) => n += 1,
                Err(err) => break err,
            }
        };
        assert!(matches!(err, StorageError::BudgetExhausted { .. }), "{err:?}");
        // Every entry inserted before the failure is still intact.
        assert_eq!(map.len(), n);
        for m in 0..n {
            assert_eq!(map.get(&pool, &key(m)), Some(&[0u8; 16][..]), "key {m}");
        }
    }

    #[test]
    fn matches_btreemap_on_random_operation_sequences() {
        use icbtc_sim::testkit;
        testkit::check(0x57_0001, testkit::DEFAULT_CASES, |rng| {
            let mut pool = small_pool();
            let mut map = PagedMap::new();
            let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            let ops = testkit::u64_in(rng, 50..400);
            for _ in 0..ops {
                let k = key(testkit::u64_in(rng, 0..120));
                match testkit::u64_in(rng, 0..10) {
                    0..=5 => {
                        let v = vec![rng.below(256) as u8; testkit::u64_in(rng, 1..40) as usize];
                        assert_eq!(
                            map.insert(&mut pool, &k, &v).unwrap(),
                            oracle.insert(k, v)
                        );
                    }
                    6..=8 => {
                        assert_eq!(map.remove(&mut pool, &k), oracle.remove(&k));
                    }
                    _ => {
                        assert_eq!(
                            map.get(&pool, &k).map(<[u8]>::to_vec),
                            oracle.get(&k).cloned()
                        );
                    }
                }
            }
            assert_eq!(map.len() as usize, oracle.len());
            let got: Vec<(Vec<u8>, Vec<u8>)> =
                map.iter(&pool).map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
            let want: Vec<(Vec<u8>, Vec<u8>)> =
                oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(got, want);
            let total: u64 =
                oracle.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
            assert_eq!(map.entry_bytes(), total);
        });
    }
}

//! Deterministic lifecycle-event plans for the replicated subnet.
//!
//! A [`LifecyclePlan`] is the IC-layer analog of btcnet's `FaultPlan`:
//! where that plan degrades the Bitcoin fabric *below* the canister,
//! this one exercises the replicated layer itself — periodic
//! checkpoints, canister upgrades (serialize → drop node-local state →
//! restore), replica crash/restart with catch-up from the latest
//! checkpoint, and shadow-replica divergence detection with seeded
//! state corruption.
//!
//! Plans are plain data: every round list is sorted and deduplicated,
//! and [`LifecyclePlan::randomized`] draws from a caller-supplied
//! `SimRng`, so a given (seed, plan) pair produces a byte-identical
//! lifecycle schedule — the property behind `scripts/verify.sh`'s
//! recovery determinism gate.

use icbtc_sim::SimRng;

/// A deterministic schedule of replicated-layer lifecycle events,
/// installed on the simulation driver (`icbtc::System::set_lifecycle_plan`).
///
/// # Examples
///
/// ```
/// use icbtc_ic::LifecyclePlan;
///
/// let plan = LifecyclePlan::builtin("mixed").unwrap();
/// assert!(plan.checkpoint_every > 0);
/// assert!(plan.ends_at() > 0);
/// assert!(LifecyclePlan::none().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecyclePlan {
    /// Checkpoint cadence in rounds (0 = no periodic checkpoints).
    pub checkpoint_every: u64,
    /// Rounds after which the canister is upgraded: serialized, node-local
    /// state dropped, restored. Sorted, deduplicated.
    pub upgrades: Vec<u64>,
    /// Rounds after which a replica crash/restart is simulated: catch-up
    /// from the latest checkpoint plus deterministic replay of the
    /// post-checkpoint ingress log. Sorted, deduplicated.
    pub crashes: Vec<u64>,
    /// Run a shadow replica that re-executes every round and compares
    /// per-round state hashes against the live canister.
    pub shadow: bool,
    /// Rounds after which the *shadow* replica's state is deliberately
    /// corrupted, proving the divergence detector fires. Implies
    /// [`LifecyclePlan::shadow`]. Sorted, deduplicated.
    pub corruptions: Vec<u64>,
}

impl LifecyclePlan {
    /// A plan that injects nothing.
    pub fn none() -> LifecyclePlan {
        LifecyclePlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        *self == LifecyclePlan::default()
    }

    /// Whether the plan needs the shadow replica running.
    pub fn wants_shadow(&self) -> bool {
        self.shadow || !self.corruptions.is_empty()
    }

    /// The last round any scheduled event fires in (0 when only periodic
    /// machinery — checkpoints, the shadow — is configured).
    pub fn ends_at(&self) -> u64 {
        let mut end = 0;
        for &round in self.upgrades.iter().chain(&self.crashes).chain(&self.corruptions) {
            end = end.max(round);
        }
        end
    }

    /// Sorts and deduplicates every round list — the canonical form every
    /// constructor ends in.
    fn normalized(mut self) -> LifecyclePlan {
        self.upgrades.sort_unstable();
        self.upgrades.dedup();
        self.crashes.sort_unstable();
        self.crashes.dedup();
        self.corruptions.sort_unstable();
        self.corruptions.dedup();
        self
    }

    /// Names accepted by [`LifecyclePlan::builtin`].
    pub fn builtin_names() -> &'static [&'static str] {
        &["checkpoints", "upgrades", "crashes", "corruption", "mixed"]
    }

    /// The canonical recovery plans shared by `tests/recovery.rs` and the
    /// `recovery_soak` bench binary. All are written against runs of at
    /// least 60 rounds and schedule every event after the first cadence
    /// checkpoint, so crash catch-up always has a checkpoint to restart
    /// from.
    pub fn builtin(name: &str) -> Option<LifecyclePlan> {
        let plan = match name {
            "checkpoints" => LifecyclePlan {
                checkpoint_every: 10,
                ..LifecyclePlan::default()
            },
            "upgrades" => LifecyclePlan {
                checkpoint_every: 10,
                upgrades: vec![15, 31, 48],
                ..LifecyclePlan::default()
            },
            "crashes" => LifecyclePlan {
                checkpoint_every: 10,
                crashes: vec![13, 27, 44, 55],
                ..LifecyclePlan::default()
            },
            "corruption" => LifecyclePlan {
                checkpoint_every: 10,
                shadow: true,
                corruptions: vec![20, 40],
                ..LifecyclePlan::default()
            },
            "mixed" => LifecyclePlan {
                checkpoint_every: 8,
                upgrades: vec![19, 43],
                crashes: vec![26, 51],
                shadow: true,
                corruptions: vec![34],
            },
            _ => return None,
        };
        Some(plan.normalized())
    }

    /// Samples a plan over rounds `1..=horizon` from `rng`: `upgrades` +
    /// `crashes` + `corruptions` distinct event rounds, all strictly after
    /// the first cadence checkpoint. Drawing from the run's own seeded
    /// rng keeps (seed → schedule) byte-reproducible.
    pub fn randomized(
        rng: &mut SimRng,
        horizon: u64,
        checkpoint_every: u64,
        upgrades: usize,
        crashes: usize,
        corruptions: usize,
    ) -> LifecyclePlan {
        let cadence = checkpoint_every.max(1);
        let first_eligible = cadence + 1;
        let mut free: Vec<u64> = (first_eligible..=horizon.max(first_eligible)).collect();
        let mut draw = |n: usize, free: &mut Vec<u64>| {
            let mut rounds = Vec::with_capacity(n);
            for _ in 0..n {
                if free.is_empty() {
                    break;
                }
                rounds.push(free.swap_remove(rng.index(free.len())));
            }
            rounds
        };
        let plan = LifecyclePlan {
            checkpoint_every: cadence,
            upgrades: draw(upgrades, &mut free),
            crashes: draw(crashes, &mut free),
            shadow: corruptions > 0,
            corruptions: draw(corruptions, &mut free),
        };
        plan.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_builtin_plans_are_not() {
        assert!(LifecyclePlan::none().is_empty());
        for name in LifecyclePlan::builtin_names() {
            let plan = LifecyclePlan::builtin(name).unwrap();
            assert!(!plan.is_empty(), "{name}");
        }
        assert!(LifecyclePlan::builtin("nonsense").is_none());
    }

    #[test]
    fn builtin_events_fire_after_the_first_checkpoint() {
        for name in LifecyclePlan::builtin_names() {
            let plan = LifecyclePlan::builtin(name).unwrap();
            for &round in plan.upgrades.iter().chain(&plan.crashes).chain(&plan.corruptions) {
                assert!(
                    round > plan.checkpoint_every,
                    "{name}: round {round} precedes the first checkpoint"
                );
            }
            assert!(plan.ends_at() <= 60, "{name} must fit a 60-round soak");
        }
    }

    #[test]
    fn corruption_implies_shadow() {
        let plan = LifecyclePlan::builtin("corruption").unwrap();
        assert!(plan.wants_shadow());
        let silent = LifecyclePlan { corruptions: vec![5], ..LifecyclePlan::default() };
        assert!(silent.wants_shadow(), "corruptions without shadow would go undetected");
    }

    #[test]
    fn randomized_plans_are_reproducible_and_disjoint() {
        let sample = |seed| {
            let mut rng = SimRng::seed_from(seed);
            LifecyclePlan::randomized(&mut rng, 100, 10, 3, 3, 2)
        };
        assert_eq!(sample(7), sample(7), "same seed, same plan");
        assert_ne!(sample(7), sample(8), "different seed, different plan");
        let plan = sample(7);
        assert_eq!(plan.upgrades.len(), 3);
        assert_eq!(plan.crashes.len(), 3);
        assert_eq!(plan.corruptions.len(), 2);
        assert!(plan.shadow);
        // Event rounds are pairwise distinct and after the first cadence.
        let mut all: Vec<u64> = plan
            .upgrades
            .iter()
            .chain(&plan.crashes)
            .chain(&plan.corruptions)
            .copied()
            .collect();
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "event rounds collide");
        assert!(all.iter().all(|&r| r > 10 && r <= 100));
    }
}

//! The replicated subnet: consensus + deterministic execution of a state
//! machine.
//!
//! A subnet hosts one replicated application state (here: the Bitcoin
//! canister) and advances it in rounds. Each round, the consensus engine
//! picks a block maker, the block's payload (ingress batch plus an
//! optional externally supplied payload, e.g. the Bitcoin adapter's
//! response) is finalized, and execution applies it deterministically
//! under instruction metering.

use icbtc_sim::obs::{FieldValue, Obs, DEFAULT_BOUNDS, INSTRUCTION_BOUNDS};
use icbtc_sim::{SimDuration, SimRng, SimTime};

use crate::consensus::{ConsensusConfig, ConsensusEngine, RoundInfo};
use crate::ingress::{IngressId, IngressPool, LatencyModel};
use crate::meter::Meter;

/// A deterministically replicated application.
pub trait StateMachine {
    /// Ingress message type.
    type Input;
    /// Response type.
    type Output;

    /// Executes one finalized input, charging the meter for every
    /// operation.
    fn execute(&mut self, input: Self::Input, ctx: &mut ExecutionContext<'_>) -> Self::Output;

    /// Executes one non-replicated query against the current state.
    ///
    /// The default routes through [`StateMachine::execute`]; applications
    /// with a cheaper read path (e.g. a query cache that must not affect
    /// replicated state) override this.
    fn execute_query(&mut self, input: Self::Input, ctx: &mut ExecutionContext<'_>) -> Self::Output {
        self.execute(input, ctx)
    }

    /// Estimated wire size of an output, feeding the latency model's
    /// response-transfer component for batched queries.
    fn output_bytes(_output: &Self::Output) -> usize {
        64
    }

    /// Serializes the machine's *replicated* portion into a checkpoint a
    /// later [`StateMachine::restore`] can rebuild from. `None` (the
    /// default) means the application does not support checkpointing and
    /// the subnet's periodic checkpointer stays inert.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Replaces this machine with the state a checkpoint captured,
    /// dropping any node-local state (caches, profilers) — the
    /// `post_upgrade`/crash-restart path.
    ///
    /// # Errors
    ///
    /// A short description when the bytes are corrupt or checkpointing is
    /// unsupported; the machine must be left unchanged on error.
    fn restore(&mut self, _bytes: &[u8]) -> Result<(), &'static str> {
        Err("checkpointing not supported")
    }

    /// A deterministic fingerprint of the replicated state, used by the
    /// divergence detector to compare replicas. `None` (the default)
    /// disables comparison.
    fn state_fingerprint(&self) -> Option<[u8; 32]> {
        None
    }
}

/// A point-in-time checkpoint of a subnet's replicated state, from which
/// a crashed replica catches up.
#[derive(Debug, Clone)]
pub struct SubnetCheckpoint {
    /// The round after whose execution the checkpoint was taken.
    pub round: u64,
    /// Finalization time of that round.
    pub at: SimTime,
    /// The [`StateMachine::checkpoint`] bytes.
    pub bytes: Vec<u8>,
    /// The [`StateMachine::state_fingerprint`] at checkpoint time (zeroes
    /// if the machine does not expose one).
    pub state_hash: [u8; 32],
}

/// The finalized ingress inputs of one round — the journal entry a
/// catch-up replay re-executes on top of the latest checkpoint.
#[derive(Debug, Clone)]
pub struct JournalRound<I> {
    /// The round number.
    pub round: u64,
    /// Finalization time of the round.
    pub finalized_at: SimTime,
    /// The ingress batch, in execution order.
    pub inputs: Vec<I>,
}

/// Configuration of the batched query plane (per-round drain bound and
/// deterministic per-replica execution concurrency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlaneConfig {
    /// Maximum queries drained from the queue in one round.
    pub max_per_round: usize,
    /// Number of concurrent query execution lanes on the serving replica.
    /// Queries queue on the earliest-free lane, so latency under load
    /// reflects queueing delay, not just service time.
    pub concurrency: usize,
}

impl Default for QueryPlaneConfig {
    fn default() -> QueryPlaneConfig {
        QueryPlaneConfig { max_per_round: 256, concurrency: 4 }
    }
}

/// Context handed to executing canister code.
#[derive(Debug)]
pub struct ExecutionContext<'a> {
    /// The instruction meter for this message.
    pub meter: &'a mut Meter,
    /// Finalization time of the round being executed.
    pub now: SimTime,
    /// The round number.
    pub round: u64,
}

/// The result of one replicated (update) call.
#[derive(Debug, Clone)]
pub struct CallResult<O> {
    /// The ingress message id.
    pub id: IngressId,
    /// The application response.
    pub output: O,
    /// Instructions executed for this message.
    pub instructions: u64,
    /// When the certified response reached the caller.
    pub responded_at: SimTime,
    /// When the message was originally submitted.
    pub submitted_at: SimTime,
}

impl<O> CallResult<O> {
    /// End-to-end latency experienced by the caller.
    pub fn latency(&self) -> icbtc_sim::SimDuration {
        self.responded_at.saturating_since(self.submitted_at)
    }
}

/// A report of one executed round.
#[derive(Debug)]
pub struct RoundReport<O> {
    /// Consensus metadata for the round.
    pub info: RoundInfo,
    /// Completed calls, in execution order.
    pub results: Vec<CallResult<O>>,
    /// Completed batched queries, in execution order. Queries do not go
    /// through consensus; they are drained from their own bounded queue
    /// alongside the round.
    pub query_results: Vec<CallResult<O>>,
    /// Instructions spent executing the external payload (if any).
    pub payload_instructions: u64,
}

/// A subnet hosting a replicated state machine.
///
/// # Examples
///
/// ```
/// use icbtc_ic::consensus::ConsensusConfig;
/// use icbtc_ic::subnet::{ExecutionContext, StateMachine, Subnet};
///
/// struct Counter(u64);
/// impl StateMachine for Counter {
///     type Input = u64;
///     type Output = u64;
///     fn execute(&mut self, add: u64, ctx: &mut ExecutionContext<'_>) -> u64 {
///         ctx.meter.charge(10);
///         self.0 += add;
///         self.0
///     }
/// }
///
/// let mut subnet = Subnet::new(Counter(0), ConsensusConfig::thirteen_replicas(), 7);
/// subnet.submit(5);
/// // The call lands in a round once its routing delay has elapsed.
/// let output = loop {
///     let report = subnet.execute_round(|_state, _ctx| {});
///     if let Some(result) = report.results.first() {
///         break result.output;
///     }
/// };
/// assert_eq!(output, 5);
/// ```
pub struct Subnet<S: StateMachine> {
    state: S,
    engine: ConsensusEngine,
    pool: IngressPool<S::Input>,
    query_pool: IngressPool<S::Input>,
    query_config: QueryPlaneConfig,
    /// Busy-until time of each query execution lane — the deterministic
    /// queueing model behind batched query latency.
    query_lanes: Vec<SimTime>,
    latency: LatencyModel,
    rng: SimRng,
    total_instructions: u64,
    completed_calls: u64,
    completed_queries: u64,
    /// Checkpoint every N rounds (0 = off, the default — existing
    /// workloads pay nothing).
    checkpoint_every: u64,
    latest_checkpoint: Option<SubnetCheckpoint>,
    /// Post-checkpoint finalized-ingress journal, oldest first. Only
    /// recorded while [`Subnet::set_input_journal`] has enabled it.
    journal: Vec<JournalRound<S::Input>>,
    journal_enabled: bool,
    /// Observability endpoint (metrics + trace), component `"ic"`.
    obs: Obs,
}

impl<S: StateMachine> Subnet<S> {
    /// Creates a subnet around an initial application state.
    pub fn new(state: S, config: ConsensusConfig, seed: u64) -> Subnet<S> {
        let mut obs = Obs::new("ic");
        obs.metrics.register_histogram("ic_message_instructions", INSTRUCTION_BOUNDS);
        obs.metrics.register_histogram("ic_query_instructions", INSTRUCTION_BOUNDS);
        obs.metrics.register_histogram("ic_query_batch_size", DEFAULT_BOUNDS);
        let query_config = QueryPlaneConfig::default();
        Subnet {
            state,
            engine: ConsensusEngine::new(config, seed),
            pool: IngressPool::new(),
            query_pool: IngressPool::new(),
            query_lanes: vec![SimTime::ZERO; query_config.concurrency.max(1)],
            query_config,
            latency: LatencyModel::default(),
            rng: SimRng::seed_from(seed.wrapping_add(0x1c)),
            total_instructions: 0,
            completed_calls: 0,
            completed_queries: 0,
            checkpoint_every: 0,
            latest_checkpoint: None,
            journal: Vec::new(),
            journal_enabled: false,
            obs,
        }
    }

    /// Sets the periodic checkpoint cadence: every `rounds` rounds (after
    /// the round's execution), the subnet asks the state machine for a
    /// [`StateMachine::checkpoint`]. `0` disables the checkpointer.
    pub fn set_checkpoint_cadence(&mut self, rounds: u64) {
        self.checkpoint_every = rounds;
    }

    /// The checkpoint cadence in force (0 = off).
    pub fn checkpoint_cadence(&self) -> u64 {
        self.checkpoint_every
    }

    /// Enables or disables the finalized-ingress journal that crash
    /// catch-up replays on top of the latest checkpoint.
    pub fn set_input_journal(&mut self, enabled: bool) {
        self.journal_enabled = enabled;
        if !enabled {
            self.journal.clear();
        }
    }

    /// Takes a checkpoint immediately, outside the cadence. Returns
    /// `false` when the state machine does not support checkpointing.
    pub fn take_checkpoint(&mut self) -> bool {
        let round = self.engine.round();
        let at = self.engine.now();
        self.checkpoint_now(round, at)
    }

    /// The most recent checkpoint, if any — what a crashed replica
    /// restarts from.
    // icbtc-lint: node-local -- checkpoint storage is per-replica durable state, inspected by the recovery harness, never read back into replicated execution
    pub fn latest_checkpoint(&self) -> Option<&SubnetCheckpoint> {
        self.latest_checkpoint.as_ref()
    }

    /// The finalized-ingress journal accumulated since the oldest
    /// retained round, oldest first.
    // icbtc-lint: node-local -- the journal mirrors what consensus already finalized; it is read by the catch-up replayer, never by live replicated execution
    pub fn input_journal(&self) -> &[JournalRound<S::Input>] {
        &self.journal
    }

    /// Drops journal rounds at or before `round` — called once a
    /// checkpoint makes them unnecessary for catch-up.
    pub fn prune_journal_through(&mut self, round: u64) {
        self.journal.retain(|entry| entry.round > round);
    }

    fn checkpoint_now(&mut self, round: u64, at: SimTime) -> bool {
        let Some(bytes) = self.state.checkpoint() else {
            return false;
        };
        let state_hash = self.state.state_fingerprint().unwrap_or([0; 32]);
        let m = &mut self.obs.metrics;
        m.inc("ic_checkpoint_total");
        m.add("ic_checkpoint_bytes_total", bytes.len() as u64);
        m.set_gauge("ic_checkpoint_bytes", bytes.len() as i64);
        m.set_gauge("ic_checkpoint_last_round", round as i64);
        self.obs.trace.event(
            "ic.checkpoint",
            at,
            &[
                ("round", FieldValue::U64(round)),
                ("bytes", FieldValue::U64(bytes.len() as u64)),
            ],
        );
        self.latest_checkpoint = Some(SubnetCheckpoint { round, at, bytes, state_hash });
        true
    }

    /// Replaces the query-plane configuration, resetting the lane clocks.
    pub fn set_query_plane(&mut self, config: QueryPlaneConfig) {
        self.query_lanes = vec![SimTime::ZERO; config.concurrency.max(1)];
        self.query_config = config;
    }

    /// The query-plane configuration in force.
    pub fn query_plane(&self) -> QueryPlaneConfig {
        self.query_config
    }

    /// Read access to the subnet's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the subnet's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Replaces the latency model (calibration experiments).
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Read access to the replicated state (for queries).
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the replicated state — test and upgrade hook
    /// (corresponds to a canister upgrade, which the paper notes is needed
    /// for reorganizations deeper than the stability horizon).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// The consensus engine (round info, Byzantine bookkeeping).
    pub fn consensus(&self) -> &ConsensusEngine {
        &self.engine
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total instructions executed since genesis.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Total completed replicated calls.
    pub fn completed_calls(&self) -> u64 {
        self.completed_calls
    }

    /// Total completed batched queries.
    pub fn completed_queries(&self) -> u64 {
        self.completed_queries
    }

    /// Queries still waiting in the query queue.
    pub fn query_queue_depth(&self) -> usize {
        self.query_pool.len()
    }

    /// Submits an update call at the current time; it becomes includable
    /// after the sampled routing delay.
    pub fn submit(&mut self, input: S::Input) -> IngressId {
        let now = self.engine.now();
        self.submit_at(now, input)
    }

    /// Submits with an explicit submission timestamp (driver-controlled
    /// workloads).
    pub fn submit_at(&mut self, at: SimTime, input: S::Input) -> IngressId {
        self.obs.metrics.inc("ic_ingress_submitted_total");
        let routing = self.latency.sample_ingress_routing(&mut self.rng);
        self.pool.submit(at, at + routing, input)
    }

    /// Submits a query at the current time; it reaches the serving replica
    /// after half a sampled query round trip and executes in the next
    /// round's bounded query batch.
    pub fn submit_query(&mut self, input: S::Input) -> IngressId {
        let now = self.engine.now();
        self.submit_query_at(now, input)
    }

    /// Submits a query with an explicit submission timestamp.
    pub fn submit_query_at(&mut self, at: SimTime, input: S::Input) -> IngressId {
        self.obs.metrics.inc("ic_query_submitted_total");
        let rtt = self.latency.sample_query_rtt(&mut self.rng);
        let inbound = SimDuration::from_nanos(rtt.as_nanos() / 2);
        self.query_pool.submit(at, at + inbound, input)
    }

    /// Stalls the subnet clock without executing (models downtime).
    pub fn stall(&mut self, duration: icbtc_sim::SimDuration) {
        self.engine.stall(duration);
    }

    /// Executes one round: the external payload hook runs first (the
    /// Bitcoin payload the block maker's adapter supplied), then the
    /// ingress batch.
    pub fn execute_round(
        &mut self,
        payload: impl FnOnce(&mut S, &mut ExecutionContext<'_>),
    ) -> RoundReport<S::Output>
    where
        S::Input: Clone,
    {
        self.execute_round_with(|state, ctx, _info| payload(state, ctx))
    }

    /// Like [`Subnet::execute_round`], but the payload hook also receives
    /// the round's consensus metadata — in particular which replica is
    /// block maker, which decides whose Bitcoin adapter supplies the
    /// round's payload (and whether a Byzantine maker gets its turn).
    pub fn execute_round_with(
        &mut self,
        payload: impl FnOnce(&mut S, &mut ExecutionContext<'_>, RoundInfo),
    ) -> RoundReport<S::Output>
    where
        S::Input: Clone,
    {
        let info = self.engine.next_round();
        let span = self.obs.trace.span_start(
            "ic.round",
            info.finalized_at,
            &[
                ("round", FieldValue::U64(info.round)),
                ("maker", FieldValue::U64(info.block_maker.0 as u64)),
                ("byzantine_maker", FieldValue::U64(info.maker_is_byzantine as u64)),
            ],
        );
        self.obs.metrics.inc("ic_rounds_total");
        if info.maker_is_byzantine {
            self.obs.metrics.inc("ic_byzantine_maker_rounds_total");
        }

        let mut meter = Meter::new();
        let mut ctx = ExecutionContext { meter: &mut meter, now: info.finalized_at, round: info.round };
        payload(&mut self.state, &mut ctx, info);
        let payload_instructions = meter.take();
        self.total_instructions += payload_instructions;
        self.obs.metrics.add("ic_payload_instructions_total", payload_instructions);
        self.obs.metrics.add("ic_instructions_total", payload_instructions);
        // Attribute the round payload's modeled execution time
        // (nanoseconds) to the subnet profiler.
        let frame = self.obs.prof.enter("payload_execution");
        self.obs.prof.add(self.latency.execution_time(payload_instructions).as_nanos());
        self.obs.prof.exit(frame);

        let batch = self.pool.take_ready(info.finalized_at);
        if self.journal_enabled {
            // Journal the finalized batch before execution so a catch-up
            // replay sees exactly what the live run is about to apply.
            self.journal.push(JournalRound {
                round: info.round,
                finalized_at: info.finalized_at,
                inputs: batch.iter().map(|ready| ready.payload.clone()).collect(),
            });
        }
        let mut results = Vec::with_capacity(batch.len());
        for ready in batch {
            let mut meter = Meter::new();
            let mut ctx =
                ExecutionContext { meter: &mut meter, now: info.finalized_at, round: info.round };
            let output = self.state.execute(ready.payload, &mut ctx);
            let instructions = meter.take();
            self.total_instructions += instructions;
            self.completed_calls += 1;
            self.obs.metrics.inc("ic_messages_executed_total");
            self.obs.metrics.add("ic_instructions_total", instructions);
            self.obs.metrics.observe("ic_message_instructions", instructions);
            let response_path = self.latency.sample_response_path(&mut self.rng);
            let exec_time = self.latency.execution_time(instructions);
            // Attribute the modeled service time (nanoseconds) to the
            // subnet profiler so the report covers the ic layer too.
            let frame = self.obs.prof.enter("message_execution");
            self.obs.prof.add(exec_time.as_nanos());
            self.obs.prof.exit(frame);
            results.push(CallResult {
                id: ready.id,
                output,
                instructions,
                responded_at: info.finalized_at + exec_time + response_path,
                submitted_at: ready.submitted_at,
            });
        }
        self.obs.metrics.set_gauge("ic_ingress_queue_depth", self.pool.len() as i64);

        // Batched query rounds: drain a bounded batch from the query
        // queue. Queries execute against the post-round state on a single
        // replica; they never go through consensus and never count toward
        // replicated instructions. Latency is modeled by queueing each
        // query on the earliest-free execution lane, so a loaded replica
        // shows genuine queueing delay.
        let query_batch = self
            .query_pool
            .take_ready_bounded(info.finalized_at, self.query_config.max_per_round);
        let mut query_results = Vec::with_capacity(query_batch.len());
        if !query_batch.is_empty() {
            self.obs.metrics.observe("ic_query_batch_size", query_batch.len() as u64);
        }
        for ready in query_batch {
            let mut meter = Meter::new();
            let mut ctx =
                ExecutionContext { meter: &mut meter, now: info.finalized_at, round: info.round };
            let output = self.state.execute_query(ready.payload, &mut ctx);
            let instructions = meter.take();
            self.completed_queries += 1;
            self.obs.metrics.inc("ic_queries_executed_total");
            self.obs.metrics.add("ic_query_instructions_total", instructions);
            self.obs.metrics.observe("ic_query_instructions", instructions);
            let exec_time = self.latency.execution_time(instructions);
            let transfer_time = self.latency.transfer_time(S::output_bytes(&output));
            let service = exec_time + transfer_time;
            // Modeled query service time (nanoseconds), split into its
            // execution and response-transfer parts.
            let frame = self.obs.prof.enter("query_service");
            let exec_frame = self.obs.prof.enter("execution");
            self.obs.prof.add(exec_time.as_nanos());
            self.obs.prof.exit(exec_frame);
            let transfer_frame = self.obs.prof.enter("transfer");
            self.obs.prof.add(transfer_time.as_nanos());
            self.obs.prof.exit(transfer_frame);
            self.obs.prof.exit(frame);
            let lane = (0..self.query_lanes.len())
                .min_by_key(|&lane| self.query_lanes[lane])
                .unwrap_or(0);
            let start = self.query_lanes[lane].max(ready.available_at);
            let busy_until = start + service;
            self.query_lanes[lane] = busy_until;
            let outbound_rtt = self.latency.sample_query_rtt(&mut self.rng);
            let outbound = SimDuration::from_nanos(outbound_rtt.as_nanos() / 2);
            query_results.push(CallResult {
                id: ready.id,
                output,
                instructions,
                responded_at: busy_until + outbound,
                submitted_at: ready.submitted_at,
            });
        }
        self.obs.metrics.set_gauge("ic_query_queue_depth", self.query_pool.len() as i64);

        if self.checkpoint_every > 0 && info.round.is_multiple_of(self.checkpoint_every) {
            self.checkpoint_now(info.round, info.finalized_at);
        }

        self.obs.trace.span_end(
            span,
            info.finalized_at,
            &[
                ("messages", FieldValue::U64(results.len() as u64)),
                ("queries", FieldValue::U64(query_results.len() as u64)),
                ("payload_instructions", FieldValue::U64(payload_instructions)),
            ],
        );
        RoundReport { info, results, query_results, payload_instructions }
    }

    /// Runs a query against the current state on a single replica,
    /// returning the result, the instructions executed, and the sampled
    /// end-to-end latency for a response of `response_bytes(output)` bytes.
    pub fn query<R>(
        &mut self,
        run: impl FnOnce(&S, &mut Meter) -> R,
        response_bytes: impl FnOnce(&R) -> usize,
    ) -> (R, u64, icbtc_sim::SimDuration) {
        self.query_mut(move |state, meter| run(state, meter), response_bytes)
    }

    /// Like [`Subnet::query`], but with mutable state access — for query
    /// paths that maintain non-replicated node-local state such as a query
    /// cache. Still bypasses consensus entirely.
    pub fn query_mut<R>(
        &mut self,
        run: impl FnOnce(&mut S, &mut Meter) -> R,
        response_bytes: impl FnOnce(&R) -> usize,
    ) -> (R, u64, icbtc_sim::SimDuration) {
        let mut meter = Meter::new();
        let result = run(&mut self.state, &mut meter);
        let instructions = meter.take();
        let bytes = response_bytes(&result);
        // Same service-time attribution as the batched query plane:
        // modeled execution plus response transfer, in nanoseconds.
        let exec_time = self.latency.execution_time(instructions);
        let transfer_time = self.latency.transfer_time(bytes);
        let frame = self.obs.prof.enter("query_service");
        let exec_frame = self.obs.prof.enter("execution");
        self.obs.prof.add(exec_time.as_nanos());
        self.obs.prof.exit(exec_frame);
        let transfer_frame = self.obs.prof.enter("transfer");
        self.obs.prof.add(transfer_time.as_nanos());
        self.obs.prof.exit(transfer_frame);
        self.obs.prof.exit(frame);
        let latency = self.latency.sample_query(&mut self.rng, instructions, bytes);
        (result, instructions, latency)
    }
}

impl<S: StateMachine> std::fmt::Debug for Subnet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subnet")
            .field("round", &self.engine.round())
            .field("now", &self.engine.now())
            .field("total_instructions", &self.total_instructions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Adder {
        total: u64,
    }

    impl StateMachine for Adder {
        type Input = u64;
        type Output = u64;
        fn execute(&mut self, add: u64, ctx: &mut ExecutionContext<'_>) -> u64 {
            ctx.meter.charge(100 * add);
            self.total += add;
            self.total
        }
    }

    fn subnet(seed: u64) -> Subnet<Adder> {
        Subnet::new(Adder { total: 0 }, ConsensusConfig::thirteen_replicas(), seed)
    }

    #[test]
    fn ingress_executes_after_routing_delay() {
        let mut subnet = subnet(1);
        subnet.submit(5);
        // The first round may or may not catch the message depending on
        // the sampled routing delay; within a few rounds it must land.
        let mut outputs = Vec::new();
        for _ in 0..10 {
            let report = subnet.execute_round(|_, _| {});
            outputs.extend(report.results.into_iter().map(|r| r.output));
        }
        assert_eq!(outputs, vec![5]);
        assert_eq!(subnet.completed_calls(), 1);
        assert_eq!(subnet.state().total, 5);
    }

    #[test]
    fn metering_accumulates() {
        let mut subnet = subnet(2);
        subnet.submit(3);
        subnet.submit(4);
        for _ in 0..10 {
            subnet.execute_round(|_, _| {});
        }
        assert_eq!(subnet.total_instructions(), 700);
    }

    #[test]
    fn payload_runs_before_ingress_and_is_metered() {
        let mut subnet = subnet(3);
        subnet.submit(1);
        let mut payload_ran_first = false;
        for _ in 0..10 {
            let report = subnet.execute_round(|state, ctx| {
                ctx.meter.charge(42);
                if state.total == 0 {
                    payload_ran_first = true;
                }
                state.total += 100;
            });
            assert_eq!(report.payload_instructions, 42);
        }
        assert!(payload_ran_first);
        // 10 payloads of +100 plus the ingress +1.
        assert_eq!(subnet.state().total, 1001);
    }

    #[test]
    fn replicated_latency_matches_paper_distribution() {
        let mut subnet = subnet(4);
        let mut latencies = icbtc_sim::metrics::Histogram::new();
        for _ in 0..300 {
            subnet.submit(1);
            loop {
                let report = subnet.execute_round(|_, _| {});
                if let Some(result) = report.results.first() {
                    latencies.record(result.latency().as_secs_f64());
                    break;
                }
            }
        }
        let mean = latencies.mean();
        let p90 = latencies.percentile(90.0);
        let min = latencies.min();
        assert!(mean < 10.0, "mean replicated latency {mean}s, paper < 10s");
        assert!(mean > 4.0, "mean implausibly low: {mean}s");
        assert!(min > 2.0, "min {min}s");
        assert!(p90 < 20.0, "p90 {p90}s, paper ≈ 18s");
    }

    #[test]
    fn queries_do_not_touch_consensus() {
        let mut subnet = subnet(5);
        let round_before = subnet.consensus().round();
        let (result, instructions, latency) = subnet.query(
            |state, meter| {
                meter.charge(1000);
                state.total
            },
            |_| 8,
        );
        assert_eq!(result, 0);
        assert_eq!(instructions, 1000);
        assert!(latency > icbtc_sim::SimDuration::ZERO);
        assert_eq!(subnet.consensus().round(), round_before);
        assert_eq!(subnet.total_instructions(), 0, "queries are not replicated work");
    }

    #[test]
    fn stall_freezes_execution_time() {
        let mut subnet = subnet(6);
        subnet.stall(icbtc_sim::SimDuration::from_secs(100));
        assert!(subnet.now() >= SimTime::from_secs(100));
        assert_eq!(subnet.consensus().round(), 0);
    }

    #[test]
    fn batched_queries_execute_without_touching_consensus_state() {
        let mut subnet = subnet(7);
        for i in 1..=5 {
            subnet.submit_query(i);
        }
        let mut completed = Vec::new();
        for _ in 0..10 {
            let report = subnet.execute_round(|_, _| {});
            assert!(report.results.is_empty());
            completed.extend(report.query_results);
        }
        assert_eq!(completed.len(), 5);
        assert_eq!(subnet.completed_queries(), 5);
        assert_eq!(subnet.completed_calls(), 0);
        assert_eq!(subnet.total_instructions(), 0, "queries are not replicated work");
        // The Adder's execute path ran (default execute_query), but only
        // against the query plane: replicated state went through `execute`
        // yet instructions stayed out of the replicated total.
        for result in &completed {
            assert!(result.instructions > 0);
            assert!(result.responded_at > result.submitted_at);
        }
    }

    #[test]
    fn query_batches_are_bounded_per_round() {
        let mut subnet = subnet(8);
        subnet.set_query_plane(QueryPlaneConfig { max_per_round: 3, concurrency: 2 });
        for i in 0..8 {
            subnet.submit_query(i);
        }
        // Let the inbound half-RTT elapse, then count per-round batches.
        subnet.stall(icbtc_sim::SimDuration::from_secs(5));
        let mut batch_sizes = Vec::new();
        while subnet.completed_queries() < 8 {
            let report = subnet.execute_round(|_, _| {});
            batch_sizes.push(report.query_results.len());
        }
        assert!(batch_sizes.iter().all(|&n| n <= 3), "{batch_sizes:?}");
        assert_eq!(batch_sizes.iter().sum::<usize>(), 8);
    }

    #[test]
    fn query_latency_grows_under_load() {
        // A saturated query plane must show queueing delay: the last
        // query of a big same-instant burst waits behind the others.
        let mut subnet = subnet(9);
        subnet.set_query_plane(QueryPlaneConfig { max_per_round: 1024, concurrency: 2 });
        for _ in 0..200 {
            subnet.submit_query(1_000_000);
        }
        subnet.stall(icbtc_sim::SimDuration::from_secs(5));
        let report = subnet.execute_round(|_, _| {});
        let latencies: Vec<_> = report.query_results.iter().map(|r| r.latency()).collect();
        assert_eq!(latencies.len(), 200);
        let first = latencies.iter().min().unwrap();
        let last = latencies.iter().max().unwrap();
        assert!(
            *last >= *first + icbtc_sim::SimDuration::from_millis(100),
            "no queueing delay visible: first {first:?}, last {last:?}"
        );
    }

    /// An Adder that checkpoints its total as 8 BE bytes.
    struct DurableAdder {
        total: u64,
    }

    impl StateMachine for DurableAdder {
        type Input = u64;
        type Output = u64;
        fn execute(&mut self, add: u64, ctx: &mut ExecutionContext<'_>) -> u64 {
            ctx.meter.charge(100 * add);
            self.total += add;
            self.total
        }
        fn checkpoint(&self) -> Option<Vec<u8>> {
            Some(self.total.to_be_bytes().to_vec())
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
            let bytes: [u8; 8] = bytes.try_into().map_err(|_| "bad length")?;
            self.total = u64::from_be_bytes(bytes);
            Ok(())
        }
        fn state_fingerprint(&self) -> Option<[u8; 32]> {
            let mut hash = [0u8; 32];
            hash[..8].copy_from_slice(&self.total.to_be_bytes());
            Some(hash)
        }
    }

    #[test]
    fn checkpointing_is_off_by_default_and_unsupported_machines_stay_inert() {
        let mut subnet = subnet(11);
        for _ in 0..5 {
            subnet.execute_round(|_, _| {});
        }
        assert!(subnet.latest_checkpoint().is_none());
        // The plain Adder has no checkpoint support: even a manual
        // request produces nothing.
        assert!(!subnet.take_checkpoint());
        assert!(subnet.latest_checkpoint().is_none());
    }

    #[test]
    fn cadence_checkpoints_capture_post_round_state() {
        let mut subnet =
            Subnet::new(DurableAdder { total: 0 }, ConsensusConfig::thirteen_replicas(), 12);
        subnet.set_checkpoint_cadence(3);
        subnet.set_input_journal(true);
        subnet.submit(7);
        for _ in 0..9 {
            subnet.execute_round(|_, _| {});
        }
        let checkpoint = subnet.latest_checkpoint().expect("cadence must have fired").clone();
        assert_eq!(checkpoint.round % 3, 0);
        assert_eq!(checkpoint.bytes, 7u64.to_be_bytes().to_vec());
        assert_eq!(&checkpoint.state_hash[..8], &7u64.to_be_bytes());

        // Restore round-trips through the StateMachine hook.
        let mut replica = DurableAdder { total: 0 };
        replica.restore(&checkpoint.bytes).unwrap();
        assert_eq!(replica.total, 7);

        // The journal recorded every round, and the finalized input is in
        // exactly one of them; pruning through the checkpoint keeps only
        // younger rounds.
        assert_eq!(subnet.input_journal().len(), 9);
        let journaled: Vec<u64> =
            subnet.input_journal().iter().flat_map(|r| r.inputs.iter().copied()).collect();
        assert_eq!(journaled, vec![7]);
        subnet.prune_journal_through(checkpoint.round);
        assert!(subnet.input_journal().iter().all(|r| r.round > checkpoint.round));
    }

    #[test]
    fn query_plane_is_deterministic_across_same_seed_runs() {
        let run = || {
            let mut subnet = subnet(10);
            for i in 0..20 {
                subnet.submit_query(i);
            }
            let mut out = Vec::new();
            for _ in 0..10 {
                let report = subnet.execute_round(|_, _| {});
                out.extend(
                    report
                        .query_results
                        .into_iter()
                        .map(|r| (r.id, r.output, r.instructions, r.responded_at)),
                );
            }
            out
        };
        assert_eq!(run(), run());
    }
}

//! The replicated subnet: consensus + deterministic execution of a state
//! machine.
//!
//! A subnet hosts one replicated application state (here: the Bitcoin
//! canister) and advances it in rounds. Each round, the consensus engine
//! picks a block maker, the block's payload (ingress batch plus an
//! optional externally supplied payload, e.g. the Bitcoin adapter's
//! response) is finalized, and execution applies it deterministically
//! under instruction metering.

use icbtc_sim::obs::{FieldValue, Obs, INSTRUCTION_BOUNDS};
use icbtc_sim::{SimRng, SimTime};

use crate::consensus::{ConsensusConfig, ConsensusEngine, RoundInfo};
use crate::ingress::{IngressId, IngressPool, LatencyModel};
use crate::meter::Meter;

/// A deterministically replicated application.
pub trait StateMachine {
    /// Ingress message type.
    type Input;
    /// Response type.
    type Output;

    /// Executes one finalized input, charging the meter for every
    /// operation.
    fn execute(&mut self, input: Self::Input, ctx: &mut ExecutionContext<'_>) -> Self::Output;
}

/// Context handed to executing canister code.
#[derive(Debug)]
pub struct ExecutionContext<'a> {
    /// The instruction meter for this message.
    pub meter: &'a mut Meter,
    /// Finalization time of the round being executed.
    pub now: SimTime,
    /// The round number.
    pub round: u64,
}

/// The result of one replicated (update) call.
#[derive(Debug, Clone)]
pub struct CallResult<O> {
    /// The ingress message id.
    pub id: IngressId,
    /// The application response.
    pub output: O,
    /// Instructions executed for this message.
    pub instructions: u64,
    /// When the certified response reached the caller.
    pub responded_at: SimTime,
    /// When the message was originally submitted.
    pub submitted_at: SimTime,
}

impl<O> CallResult<O> {
    /// End-to-end latency experienced by the caller.
    pub fn latency(&self) -> icbtc_sim::SimDuration {
        self.responded_at.saturating_since(self.submitted_at)
    }
}

/// A report of one executed round.
#[derive(Debug)]
pub struct RoundReport<O> {
    /// Consensus metadata for the round.
    pub info: RoundInfo,
    /// Completed calls, in execution order.
    pub results: Vec<CallResult<O>>,
    /// Instructions spent executing the external payload (if any).
    pub payload_instructions: u64,
}

/// A subnet hosting a replicated state machine.
///
/// # Examples
///
/// ```
/// use icbtc_ic::consensus::ConsensusConfig;
/// use icbtc_ic::subnet::{ExecutionContext, StateMachine, Subnet};
///
/// struct Counter(u64);
/// impl StateMachine for Counter {
///     type Input = u64;
///     type Output = u64;
///     fn execute(&mut self, add: u64, ctx: &mut ExecutionContext<'_>) -> u64 {
///         ctx.meter.charge(10);
///         self.0 += add;
///         self.0
///     }
/// }
///
/// let mut subnet = Subnet::new(Counter(0), ConsensusConfig::thirteen_replicas(), 7);
/// subnet.submit(5);
/// // The call lands in a round once its routing delay has elapsed.
/// let output = loop {
///     let report = subnet.execute_round(|_state, _ctx| {});
///     if let Some(result) = report.results.first() {
///         break result.output;
///     }
/// };
/// assert_eq!(output, 5);
/// ```
pub struct Subnet<S: StateMachine> {
    state: S,
    engine: ConsensusEngine,
    pool: IngressPool<S::Input>,
    latency: LatencyModel,
    rng: SimRng,
    total_instructions: u64,
    completed_calls: u64,
    /// Observability endpoint (metrics + trace), component `"ic"`.
    obs: Obs,
}

impl<S: StateMachine> Subnet<S> {
    /// Creates a subnet around an initial application state.
    pub fn new(state: S, config: ConsensusConfig, seed: u64) -> Subnet<S> {
        let mut obs = Obs::new("ic");
        obs.metrics.register_histogram("ic_message_instructions", INSTRUCTION_BOUNDS);
        Subnet {
            state,
            engine: ConsensusEngine::new(config, seed),
            pool: IngressPool::new(),
            latency: LatencyModel::default(),
            rng: SimRng::seed_from(seed.wrapping_add(0x1c)),
            total_instructions: 0,
            completed_calls: 0,
            obs,
        }
    }

    /// Read access to the subnet's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the subnet's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Replaces the latency model (calibration experiments).
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Read access to the replicated state (for queries).
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the replicated state — test and upgrade hook
    /// (corresponds to a canister upgrade, which the paper notes is needed
    /// for reorganizations deeper than the stability horizon).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// The consensus engine (round info, Byzantine bookkeeping).
    pub fn consensus(&self) -> &ConsensusEngine {
        &self.engine
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total instructions executed since genesis.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Total completed replicated calls.
    pub fn completed_calls(&self) -> u64 {
        self.completed_calls
    }

    /// Submits an update call at the current time; it becomes includable
    /// after the sampled routing delay.
    pub fn submit(&mut self, input: S::Input) -> IngressId {
        let now = self.engine.now();
        self.submit_at(now, input)
    }

    /// Submits with an explicit submission timestamp (driver-controlled
    /// workloads).
    pub fn submit_at(&mut self, at: SimTime, input: S::Input) -> IngressId {
        self.obs.metrics.inc("ic_ingress_submitted_total");
        let routing = self.latency.sample_ingress_routing(&mut self.rng);
        self.pool.submit(at, at + routing, input)
    }

    /// Stalls the subnet clock without executing (models downtime).
    pub fn stall(&mut self, duration: icbtc_sim::SimDuration) {
        self.engine.stall(duration);
    }

    /// Executes one round: the external payload hook runs first (the
    /// Bitcoin payload the block maker's adapter supplied), then the
    /// ingress batch.
    pub fn execute_round(
        &mut self,
        payload: impl FnOnce(&mut S, &mut ExecutionContext<'_>),
    ) -> RoundReport<S::Output> {
        self.execute_round_with(|state, ctx, _info| payload(state, ctx))
    }

    /// Like [`Subnet::execute_round`], but the payload hook also receives
    /// the round's consensus metadata — in particular which replica is
    /// block maker, which decides whose Bitcoin adapter supplies the
    /// round's payload (and whether a Byzantine maker gets its turn).
    pub fn execute_round_with(
        &mut self,
        payload: impl FnOnce(&mut S, &mut ExecutionContext<'_>, RoundInfo),
    ) -> RoundReport<S::Output> {
        let info = self.engine.next_round();
        let span = self.obs.trace.span_start(
            "ic.round",
            info.finalized_at,
            &[
                ("round", FieldValue::U64(info.round)),
                ("maker", FieldValue::U64(info.block_maker.0 as u64)),
                ("byzantine_maker", FieldValue::U64(info.maker_is_byzantine as u64)),
            ],
        );
        self.obs.metrics.inc("ic_rounds_total");
        if info.maker_is_byzantine {
            self.obs.metrics.inc("ic_byzantine_maker_rounds_total");
        }

        let mut meter = Meter::new();
        let mut ctx = ExecutionContext { meter: &mut meter, now: info.finalized_at, round: info.round };
        payload(&mut self.state, &mut ctx, info);
        let payload_instructions = meter.take();
        self.total_instructions += payload_instructions;
        self.obs.metrics.add("ic_payload_instructions_total", payload_instructions);
        self.obs.metrics.add("ic_instructions_total", payload_instructions);

        let batch = self.pool.take_ready(info.finalized_at);
        let mut results = Vec::with_capacity(batch.len());
        for ready in batch {
            let mut meter = Meter::new();
            let mut ctx =
                ExecutionContext { meter: &mut meter, now: info.finalized_at, round: info.round };
            let output = self.state.execute(ready.payload, &mut ctx);
            let instructions = meter.take();
            self.total_instructions += instructions;
            self.completed_calls += 1;
            self.obs.metrics.inc("ic_messages_executed_total");
            self.obs.metrics.add("ic_instructions_total", instructions);
            self.obs.metrics.observe("ic_message_instructions", instructions);
            let response_path = self.latency.sample_response_path(&mut self.rng);
            let exec_time = self.latency.execution_time(instructions);
            results.push(CallResult {
                id: ready.id,
                output,
                instructions,
                responded_at: info.finalized_at + exec_time + response_path,
                submitted_at: ready.submitted_at,
            });
        }
        self.obs.metrics.set_gauge("ic_ingress_queue_depth", self.pool.len() as i64);
        self.obs.trace.span_end(
            span,
            info.finalized_at,
            &[
                ("messages", FieldValue::U64(results.len() as u64)),
                ("payload_instructions", FieldValue::U64(payload_instructions)),
            ],
        );
        RoundReport { info, results, payload_instructions }
    }

    /// Runs a query against the current state on a single replica,
    /// returning the result, the instructions executed, and the sampled
    /// end-to-end latency for a response of `response_bytes(output)` bytes.
    pub fn query<R>(
        &mut self,
        run: impl FnOnce(&S, &mut Meter) -> R,
        response_bytes: impl FnOnce(&R) -> usize,
    ) -> (R, u64, icbtc_sim::SimDuration) {
        let mut meter = Meter::new();
        let result = run(&self.state, &mut meter);
        let instructions = meter.take();
        let bytes = response_bytes(&result);
        let latency = self.latency.sample_query(&mut self.rng, instructions, bytes);
        (result, instructions, latency)
    }
}

impl<S: StateMachine> std::fmt::Debug for Subnet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subnet")
            .field("round", &self.engine.round())
            .field("now", &self.engine.now())
            .field("total_instructions", &self.total_instructions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Adder {
        total: u64,
    }

    impl StateMachine for Adder {
        type Input = u64;
        type Output = u64;
        fn execute(&mut self, add: u64, ctx: &mut ExecutionContext<'_>) -> u64 {
            ctx.meter.charge(100 * add);
            self.total += add;
            self.total
        }
    }

    fn subnet(seed: u64) -> Subnet<Adder> {
        Subnet::new(Adder { total: 0 }, ConsensusConfig::thirteen_replicas(), seed)
    }

    #[test]
    fn ingress_executes_after_routing_delay() {
        let mut subnet = subnet(1);
        subnet.submit(5);
        // The first round may or may not catch the message depending on
        // the sampled routing delay; within a few rounds it must land.
        let mut outputs = Vec::new();
        for _ in 0..10 {
            let report = subnet.execute_round(|_, _| {});
            outputs.extend(report.results.into_iter().map(|r| r.output));
        }
        assert_eq!(outputs, vec![5]);
        assert_eq!(subnet.completed_calls(), 1);
        assert_eq!(subnet.state().total, 5);
    }

    #[test]
    fn metering_accumulates() {
        let mut subnet = subnet(2);
        subnet.submit(3);
        subnet.submit(4);
        for _ in 0..10 {
            subnet.execute_round(|_, _| {});
        }
        assert_eq!(subnet.total_instructions(), 700);
    }

    #[test]
    fn payload_runs_before_ingress_and_is_metered() {
        let mut subnet = subnet(3);
        subnet.submit(1);
        let mut payload_ran_first = false;
        for _ in 0..10 {
            let report = subnet.execute_round(|state, ctx| {
                ctx.meter.charge(42);
                if state.total == 0 {
                    payload_ran_first = true;
                }
                state.total += 100;
            });
            assert_eq!(report.payload_instructions, 42);
        }
        assert!(payload_ran_first);
        // 10 payloads of +100 plus the ingress +1.
        assert_eq!(subnet.state().total, 1001);
    }

    #[test]
    fn replicated_latency_matches_paper_distribution() {
        let mut subnet = subnet(4);
        let mut latencies = icbtc_sim::metrics::Histogram::new();
        for _ in 0..300 {
            subnet.submit(1);
            loop {
                let report = subnet.execute_round(|_, _| {});
                if let Some(result) = report.results.first() {
                    latencies.record(result.latency().as_secs_f64());
                    break;
                }
            }
        }
        let mean = latencies.mean();
        let p90 = latencies.percentile(90.0);
        let min = latencies.min();
        assert!(mean < 10.0, "mean replicated latency {mean}s, paper < 10s");
        assert!(mean > 4.0, "mean implausibly low: {mean}s");
        assert!(min > 2.0, "min {min}s");
        assert!(p90 < 20.0, "p90 {p90}s, paper ≈ 18s");
    }

    #[test]
    fn queries_do_not_touch_consensus() {
        let mut subnet = subnet(5);
        let round_before = subnet.consensus().round();
        let (result, instructions, latency) = subnet.query(
            |state, meter| {
                meter.charge(1000);
                state.total
            },
            |_| 8,
        );
        assert_eq!(result, 0);
        assert_eq!(instructions, 1000);
        assert!(latency > icbtc_sim::SimDuration::ZERO);
        assert_eq!(subnet.consensus().round(), round_before);
        assert_eq!(subnet.total_instructions(), 0, "queries are not replicated work");
    }

    #[test]
    fn stall_freezes_execution_time() {
        let mut subnet = subnet(6);
        subnet.stall(icbtc_sim::SimDuration::from_secs(100));
        assert!(subnet.now() >= SimTime::from_secs(100));
        assert_eq!(subnet.consensus().round(), 0);
    }
}

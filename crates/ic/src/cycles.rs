//! Cycles accounting and the fee schedule.
//!
//! The IC denominates computation in *cycles*, pegged to the XDR
//! (1 XDR = 10¹² cycles). The paper's §IV-B reports costs as requests per
//! U.S. dollar: ≈ 35,000 `get_balance` and ≈ 1,500 `get_utxos` calls per
//! dollar, against $1–2 per on-chain Bitcoin transaction. The fee schedule
//! below is calibrated to reproduce those figures at the stated exchange
//! rate; the derivation is recorded in EXPERIMENTS.md.

// icbtc-lint: allow-file(float) -- USD conversion is reporting-only output
// (EXPERIMENTS.md tables); all replicated charging below is integer Cycles.

/// Cycles, the IC's unit of computational cost.
pub type Cycles = u128;

/// Cycles per XDR (fixed by the IC protocol).
pub const CYCLES_PER_XDR: Cycles = 1_000_000_000_000;

/// U.S. dollars per XDR at the evaluation period's exchange rate.
pub const USD_PER_XDR: f64 = 1.34;

/// Converts a cycles amount to U.S. dollars.
pub fn cycles_to_usd(cycles: Cycles) -> f64 {
    cycles as f64 / CYCLES_PER_XDR as f64 * USD_PER_XDR
}

/// Converts U.S. dollars to cycles.
pub fn usd_to_cycles(usd: f64) -> Cycles {
    (usd / USD_PER_XDR * CYCLES_PER_XDR as f64) as Cycles
}

/// The fee schedule charged by the Bitcoin canister and the execution
/// layer.
///
/// Calibration: 35,000 balance requests per dollar ⇒ each costs
/// `1/35000 / 1.34` XDR ≈ 21.3 M cycles; 1,500 UTXO requests per dollar
/// ⇒ ≈ 497 M cycles each. Each fee is a flat part plus 0.4 cycles per
/// executed instruction (the 13-node-subnet rate), so large responses
/// cost proportionally more, matching Figure 7 (right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeeSchedule {
    /// Flat fee per `get_balance` call.
    pub get_balance_flat: Cycles,
    /// Flat fee per `get_utxos` call.
    pub get_utxos_flat: Cycles,
    /// Flat fee per `send_transaction` call.
    pub send_transaction_flat: Cycles,
    /// Additional fee per transaction byte submitted.
    pub send_transaction_per_byte: Cycles,
    /// Cycles charged per 100 executed instructions (40 ⇒ 0.4/instr).
    pub per_100_instructions: Cycles,
}

impl Default for FeeSchedule {
    fn default() -> FeeSchedule {
        FeeSchedule {
            // ≈ 21M cycles per balance request → ~35k requests/USD.
            get_balance_flat: 18_000_000,
            // ≈ 500M cycles per UTXO request → ~1.5k requests/USD.
            get_utxos_flat: 450_000_000,
            send_transaction_flat: 5_000_000_000,
            send_transaction_per_byte: 20_000_000,
            // 0.4 cycles per instruction, the 13-node-subnet rate.
            per_100_instructions: 40,
        }
    }
}

impl FeeSchedule {
    fn instruction_fee(&self, instructions: u64) -> Cycles {
        instructions as Cycles * self.per_100_instructions / 100
    }

    /// Total cycles for a `get_balance` call that executed `instructions`.
    pub fn get_balance_fee(&self, instructions: u64) -> Cycles {
        self.get_balance_flat + self.instruction_fee(instructions)
    }

    /// Total cycles for a `get_utxos` call that executed `instructions`.
    pub fn get_utxos_fee(&self, instructions: u64) -> Cycles {
        self.get_utxos_flat + self.instruction_fee(instructions)
    }

    /// Total cycles for a `send_transaction` call with a payload of
    /// `tx_bytes` bytes.
    pub fn send_transaction_fee(&self, tx_bytes: usize) -> Cycles {
        self.send_transaction_flat + self.send_transaction_per_byte * tx_bytes as Cycles
    }
}

/// A canister's cycles balance with spend tracking.
#[derive(Debug, Clone, Default)]
pub struct CyclesLedger {
    balance: Cycles,
    total_burned: Cycles,
}

impl CyclesLedger {
    /// Creates a ledger with an initial balance.
    pub fn with_balance(balance: Cycles) -> CyclesLedger {
        CyclesLedger { balance, total_burned: 0 }
    }

    /// Current balance.
    pub fn balance(&self) -> Cycles {
        self.balance
    }

    /// Cycles burned over the ledger's lifetime.
    pub fn total_burned(&self) -> Cycles {
        self.total_burned
    }

    /// Tops up the balance.
    pub fn deposit(&mut self, cycles: Cycles) {
        self.balance = self.balance.saturating_add(cycles);
    }

    /// Burns `cycles` from the balance.
    ///
    /// # Errors
    ///
    /// Returns `Err(shortfall)` if the balance is insufficient; nothing is
    /// deducted in that case.
    pub fn burn(&mut self, cycles: Cycles) -> Result<(), Cycles> {
        if self.balance < cycles {
            return Err(cycles - self.balance);
        }
        self.balance -= cycles;
        self.total_burned += cycles;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usd_conversion_roundtrip() {
        let cycles = usd_to_cycles(2.5);
        assert!((cycles_to_usd(cycles) - 2.5).abs() < 1e-9);
        assert_eq!(cycles_to_usd(CYCLES_PER_XDR), USD_PER_XDR);
    }

    #[test]
    fn default_schedule_reproduces_paper_request_rates() {
        let schedule = FeeSchedule::default();
        // Balance requests: the paper reports ≈ 35,000 per dollar.
        let per_dollar = 1.0 / cycles_to_usd(schedule.get_balance_fee(6_000_000));
        assert!(
            (30_000.0..40_000.0).contains(&per_dollar),
            "balance requests per USD = {per_dollar}"
        );
        // UTXO requests: ≈ 1,500 per dollar.
        let per_dollar = 1.0 / cycles_to_usd(schedule.get_utxos_fee(100_000_000));
        assert!(
            (1_300.0..1_700.0).contains(&per_dollar),
            "utxo requests per USD = {per_dollar}"
        );
    }

    #[test]
    fn fees_scale_with_usage() {
        let s = FeeSchedule::default();
        assert!(s.get_utxos_fee(1_000_000) < s.get_utxos_fee(100_000_000));
        assert!(s.send_transaction_fee(100) < s.send_transaction_fee(10_000));
    }

    #[test]
    fn ledger_burn_and_shortfall() {
        let mut ledger = CyclesLedger::with_balance(100);
        assert!(ledger.burn(60).is_ok());
        assert_eq!(ledger.balance(), 40);
        assert_eq!(ledger.total_burned(), 60);
        assert_eq!(ledger.burn(50), Err(10));
        assert_eq!(ledger.balance(), 40, "failed burn must not deduct");
        ledger.deposit(10);
        assert!(ledger.burn(50).is_ok());
        assert_eq!(ledger.balance(), 0);
    }
}

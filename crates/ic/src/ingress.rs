//! Ingress handling and the user-facing latency model.
//!
//! §IV-B of the paper measures two request classes against the Bitcoin
//! canister on mainnet:
//!
//! * **replicated** (update) calls, which go through consensus and are
//!   threshold-certified: minimum ≈ 7 s, average < 10 s, 90th percentile
//!   ≈ 18 s;
//! * **query** calls answered by a single replica: median ≈ 220 ms for
//!   `get_balance` and ≈ 310 ms for `get_utxos`, with p90 below 0.5 s and
//!   2.5 s respectively.
//!
//! The [`LatencyModel`] reproduces those distributions from explicit
//! components (user→boundary routing, ingress inclusion, the consensus
//! pipeline, certification, cross-subnet delivery, and execution time
//! proportional to metered instructions). The constants are calibration
//! targets, recorded in EXPERIMENTS.md; the *shape* — replicated dominated
//! by consensus, queries dominated by execution and response size — is
//! structural.

use icbtc_sim::{SimDuration, SimRng, SimTime};

/// Identifier of a submitted ingress message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IngressId(pub u64);

/// A pool of submitted-but-not-yet-executed ingress messages.
#[derive(Debug)]
pub struct IngressPool<T> {
    pending: Vec<PendingIngress<T>>,
    next_id: u64,
}

#[derive(Debug)]
struct PendingIngress<T> {
    id: IngressId,
    submitted_at: SimTime,
    available_at: SimTime,
    payload: T,
}

/// A message taken from the pool for execution.
#[derive(Debug, PartialEq, Eq)]
pub struct ReadyIngress<T> {
    /// The message id.
    pub id: IngressId,
    /// When the user submitted it.
    pub submitted_at: SimTime,
    /// When it became available for inclusion (submission + routing).
    pub available_at: SimTime,
    /// The payload.
    pub payload: T,
}

impl<T> Default for IngressPool<T> {
    fn default() -> Self {
        IngressPool { pending: Vec::new(), next_id: 0 }
    }
}

impl<T> IngressPool<T> {
    /// Creates an empty pool.
    pub fn new() -> IngressPool<T> {
        IngressPool::default()
    }

    /// Registers a message submitted at `submitted_at` that becomes
    /// available for inclusion at `available_at` (submission plus routing
    /// delay).
    pub fn submit(&mut self, submitted_at: SimTime, available_at: SimTime, payload: T) -> IngressId {
        let id = IngressId(self.next_id);
        self.next_id += 1;
        self.pending.push(PendingIngress { id, submitted_at, available_at, payload });
        id
    }

    /// Removes and returns all messages available by `now`, in submission
    /// order.
    pub fn take_ready(&mut self, now: SimTime) -> Vec<ReadyIngress<T>> {
        self.take_ready_bounded(now, usize::MAX)
    }

    /// Like [`IngressPool::take_ready`], but takes at most `max` messages,
    /// leaving the rest queued (bounded per-round batches).
    pub fn take_ready_bounded(&mut self, now: SimTime, max: usize) -> Vec<ReadyIngress<T>> {
        let mut ready = Vec::new();
        let mut remaining = Vec::with_capacity(self.pending.len());
        for entry in self.pending.drain(..) {
            if ready.len() < max && entry.available_at <= now {
                ready.push(ReadyIngress {
                    id: entry.id,
                    submitted_at: entry.submitted_at,
                    available_at: entry.available_at,
                    payload: entry.payload,
                });
            } else {
                remaining.push(entry);
            }
        }
        self.pending = remaining;
        ready
    }

    /// Messages still waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// The calibrated latency model for user-facing calls.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Mean user → boundary → subnet routing delay for updates.
    pub ingress_routing_mean: SimDuration,
    /// Std-dev of the routing delay.
    pub ingress_routing_std: SimDuration,
    /// Mean certification + response-delivery delay after finalization.
    pub certification_mean: SimDuration,
    /// Std-dev of certification delay.
    pub certification_std: SimDuration,
    /// Mean cross-subnet (XNet) overhead for calls originating on other
    /// subnets — the common case for Bitcoin-canister requests.
    pub xnet_mean: SimDuration,
    /// Std-dev of XNet overhead.
    pub xnet_std: SimDuration,
    /// Probability of a slow XNet hop (congested stream).
    pub xnet_tail_probability: f64, // icbtc-lint: allow(float) -- latency-model parameter; feeds Figure 7 measurement, not replicated state
    /// Multiplier applied on a slow XNet hop.
    pub xnet_tail_multiplier: u64,
    /// Single-replica round-trip for queries.
    pub query_rtt_mean: SimDuration,
    /// Std-dev of the query round trip.
    pub query_rtt_std: SimDuration,
    /// Probability of a heavy-tail query (cache miss / loaded replica).
    pub query_tail_probability: f64, // icbtc-lint: allow(float) -- latency-model parameter; feeds Figure 7 measurement, not replicated state
    /// Multiplier applied on a heavy-tail query.
    pub query_tail_multiplier: u64,
    /// Replica execution speed in instructions per second.
    pub instructions_per_second: u64,
    /// Response streaming throughput in bytes per second.
    pub response_bytes_per_second: u64,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            ingress_routing_mean: SimDuration::from_millis(2600),
            ingress_routing_std: SimDuration::from_millis(700),
            certification_mean: SimDuration::from_millis(1600),
            certification_std: SimDuration::from_millis(400),
            xnet_mean: SimDuration::from_millis(2900),
            xnet_std: SimDuration::from_millis(1100),
            xnet_tail_probability: 0.13, // icbtc-lint: allow(float) -- calibrated measurement constant
            xnet_tail_multiplier: 4,
            query_rtt_mean: SimDuration::from_millis(200),
            query_rtt_std: SimDuration::from_millis(45),
            query_tail_probability: 0.06, // icbtc-lint: allow(float) -- calibrated measurement constant
            query_tail_multiplier: 4,
            instructions_per_second: 400_000_000,
            response_bytes_per_second: 4_000_000,
        }
    }
}

impl LatencyModel {
    /// Samples the delay between a user submitting an update call and the
    /// message being available for block inclusion.
    pub fn sample_ingress_routing(&self, rng: &mut SimRng) -> SimDuration {
        rng.normal(self.ingress_routing_mean, self.ingress_routing_std)
            .max(SimDuration::from_millis(2200))
    }

    /// Samples the post-finalization delay until the caller holds the
    /// certified response (certification + XNet + delivery).
    pub fn sample_response_path(&self, rng: &mut SimRng) -> SimDuration {
        let certification = rng
            .normal(self.certification_mean, self.certification_std)
            .max(SimDuration::from_millis(1400));
        let xnet = rng
            .heavy_tail(self.xnet_mean, self.xnet_std, self.xnet_tail_probability, self.xnet_tail_multiplier)
            .max(SimDuration::from_millis(2600));
        certification + xnet
    }

    /// Execution time for `instructions` metered instructions.
    pub fn execution_time(&self, instructions: u64) -> SimDuration {
        SimDuration::from_nanos(instructions.saturating_mul(1_000_000_000) / self.instructions_per_second)
    }

    /// Streaming time for a response of `response_bytes` bytes.
    pub fn transfer_time(&self, response_bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            (response_bytes as u64).saturating_mul(1_000_000_000) / self.response_bytes_per_second,
        )
    }

    /// Samples the network round-trip of a single-replica query (no
    /// execution or transfer component).
    pub fn sample_query_rtt(&self, rng: &mut SimRng) -> SimDuration {
        rng.heavy_tail(
            self.query_rtt_mean,
            self.query_rtt_std,
            self.query_tail_probability,
            self.query_tail_multiplier,
        )
    }

    /// End-to-end latency of a query call that executed `instructions`
    /// and returned `response_bytes`.
    pub fn sample_query(
        &self,
        rng: &mut SimRng,
        instructions: u64,
        response_bytes: usize,
    ) -> SimDuration {
        self.sample_query_rtt(rng) + self.execution_time(instructions) + self.transfer_time(response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_orders_and_filters_by_availability() {
        let mut pool = IngressPool::new();
        let a = pool.submit(SimTime::ZERO, SimTime::from_secs(10), "a");
        let b = pool.submit(SimTime::ZERO, SimTime::from_secs(5), "b");
        let c = pool.submit(SimTime::ZERO, SimTime::from_secs(20), "c");
        assert_eq!(pool.len(), 3);

        let ready = pool.take_ready(SimTime::from_secs(12));
        assert_eq!(ready.iter().map(|r| (r.id, r.payload)).collect::<Vec<_>>(), vec![(a, "a"), (b, "b")]);
        assert_eq!(pool.len(), 1);
        assert!(pool.take_ready(SimTime::from_secs(12)).is_empty());
        let last = pool.take_ready(SimTime::from_secs(30));
        assert_eq!(last[0].id, c);
        assert!(pool.is_empty());
    }

    #[test]
    fn ingress_ids_are_unique_and_ordered() {
        let mut pool = IngressPool::new();
        let ids: Vec<IngressId> =
            (0..10).map(|_| pool.submit(SimTime::ZERO, SimTime::ZERO, ())).collect();
        for window in ids.windows(2) {
            assert!(window[0] < window[1]);
        }
    }

    #[test]
    fn query_latency_medians_match_paper() {
        let model = LatencyModel::default();
        let mut rng = SimRng::seed_from(1);
        // get_balance-like: ~6M instructions, tiny response.
        let mut balance = icbtc_sim::metrics::Histogram::new();
        // get_utxos-like: tens of M instructions, tens of kB responses.
        let mut utxos = icbtc_sim::metrics::Histogram::new();
        for _ in 0..4000 {
            balance.record(model.sample_query(&mut rng, 6_000_000, 100).as_secs_f64());
            utxos.record(model.sample_query(&mut rng, 40_000_000, 300_000).as_secs_f64());
        }
        let balance_median = balance.median();
        let utxos_median = utxos.median();
        assert!(
            (0.15..0.30).contains(&balance_median),
            "balance median {balance_median}s, paper ≈ 0.22s"
        );
        assert!(
            (0.22..0.45).contains(&utxos_median),
            "utxos median {utxos_median}s, paper ≈ 0.31s"
        );
        assert!(balance.percentile(90.0) < 1.5);
        assert!(utxos.percentile(90.0) < 2.5);
    }

    #[test]
    fn execution_time_scales_linearly() {
        let model = LatencyModel::default();
        let one = model.execution_time(model.instructions_per_second);
        assert_eq!(one, SimDuration::from_secs(1));
        assert_eq!(model.execution_time(0), SimDuration::ZERO);
    }

    #[test]
    fn routing_and_response_are_positive() {
        let model = LatencyModel::default();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            assert!(model.sample_ingress_routing(&mut rng) >= SimDuration::from_millis(2200));
            assert!(model.sample_response_path(&mut rng) >= SimDuration::from_millis(4000));
        }
    }
}

//! A simulated Internet Computer subnet.
//!
//! This crate stands in for the ICP stack (§II-A of the paper) in the
//! reproduction: blockchain-based state machine replication with
//! deterministic finalization, unpredictable block-maker selection,
//! instruction-metered deterministic execution, and cycles-denominated
//! cost accounting.
//!
//! * [`consensus`] — rounds, the random beacon, Byzantine bookkeeping.
//! * [`subnet`] — the replicated state machine with per-round payloads
//!   (how the Bitcoin adapter's responses enter execution) and ingress
//!   batching.
//! * [`meter`] — WebAssembly-instruction metering ([`Meter`]).
//! * [`cycles`] — the fee schedule and USD conversion behind §IV-B's
//!   cost figures.
//! * [`ingress`] — the calibrated latency model for replicated and query
//!   calls (Figure 7).
//!
//! # Examples
//!
//! ```
//! use icbtc_ic::consensus::{ConsensusConfig, ConsensusEngine};
//! let mut engine = ConsensusEngine::new(ConsensusConfig::thirteen_replicas(), 1);
//! let info = engine.next_round();
//! assert!(!info.maker_is_byzantine);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod consensus;
pub mod cycles;
pub mod ingress;
pub mod lifecycle;
pub mod meter;
pub mod subnet;

pub use consensus::{ConsensusConfig, ConsensusEngine, ReplicaId, RoundInfo};
pub use cycles::{Cycles, CyclesLedger, FeeSchedule};
pub use ingress::{IngressId, IngressPool, LatencyModel};
pub use lifecycle::LifecyclePlan;
pub use meter::{Meter, MeterBreakdown};
pub use subnet::{
    CallResult, ExecutionContext, JournalRound, QueryPlaneConfig, RoundReport, StateMachine, Subnet,
    SubnetCheckpoint,
};

//! Simulated ICP consensus: rounds, random-beacon block-maker selection,
//! deterministic finalization.
//!
//! The reproduction models consensus at the granularity the paper's
//! security argument needs (§II-A, §IV-A):
//!
//! * rounds produce exactly one finalized block each (no forks — the ICP
//!   finalization rule makes roll-backs impossible);
//! * the block maker of each round is drawn unpredictably by a random
//!   beacon, so an attacker holding `f < n/3` replicas gets the maker role
//!   with probability `< 1/3` per round — the fact Lemma IV.3's `3^{-c*}`
//!   bound rests on;
//! * round durations are sampled from a calibrated distribution to drive
//!   the latency results of §IV-B.

use icbtc_sim::{SimDuration, SimRng, SimTime};

/// A replica within a subnet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u32);

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica-{}", self.0)
    }
}

/// Consensus configuration for one subnet.
#[derive(Debug, Clone)]
pub struct ConsensusConfig {
    /// Number of replicas `n` (the paper's subnets run 13–40).
    pub n: usize,
    /// Number of Byzantine replicas (the *last* `byzantine` ids). Must be
    /// `< n/3` for the protocol's guarantees to hold.
    pub byzantine: usize,
    /// Mean round duration (block rate of the subnet).
    pub round_time_mean: SimDuration,
    /// Round duration standard deviation.
    pub round_time_std: SimDuration,
}

impl ConsensusConfig {
    /// A 13-replica subnet with IC-mainnet-like ~1 s rounds.
    pub fn thirteen_replicas() -> ConsensusConfig {
        ConsensusConfig {
            n: 13,
            byzantine: 0,
            round_time_mean: SimDuration::from_millis(1000),
            round_time_std: SimDuration::from_millis(150),
        }
    }

    /// Maximum tolerable faults `f = ⌊(n−1)/3⌋`.
    pub fn max_faults(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Returns `true` if the configured Byzantine count is within the
    /// tolerated bound.
    pub fn within_fault_bound(&self) -> bool {
        self.byzantine <= self.max_faults()
    }
}

/// The per-round outcome handed to the execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundInfo {
    /// Round number (1-based; round 0 is genesis).
    pub round: u64,
    /// The replica the beacon selected as block maker.
    pub block_maker: ReplicaId,
    /// Whether that replica is Byzantine.
    pub maker_is_byzantine: bool,
    /// When the round's block was finalized.
    pub finalized_at: SimTime,
}

/// The consensus engine of one subnet.
///
/// # Examples
///
/// ```
/// use icbtc_ic::consensus::{ConsensusConfig, ConsensusEngine};
///
/// let mut engine = ConsensusEngine::new(ConsensusConfig::thirteen_replicas(), 42);
/// let round = engine.next_round();
/// assert_eq!(round.round, 1);
/// assert!((round.block_maker.0 as usize) < 13);
/// ```
#[derive(Debug)]
pub struct ConsensusEngine {
    config: ConsensusConfig,
    rng: SimRng,
    round: u64,
    now: SimTime,
    byzantine_maker_rounds: u64,
}

impl ConsensusEngine {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the Byzantine count reaches n/3 or more
    /// (the protocol's guarantees would be void).
    pub fn new(config: ConsensusConfig, seed: u64) -> ConsensusEngine {
        assert!(config.n > 0, "subnet needs replicas");
        assert!(
            config.within_fault_bound(),
            "byzantine count {} exceeds f = {} for n = {}",
            config.byzantine,
            config.max_faults(),
            config.n
        );
        ConsensusEngine {
            config,
            rng: SimRng::seed_from(seed),
            round: 0,
            now: SimTime::ZERO,
            byzantine_maker_rounds: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ConsensusConfig {
        &self.config
    }

    /// Current simulated time (the finalization time of the last round).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Rounds in which a Byzantine replica was block maker.
    pub fn byzantine_maker_rounds(&self) -> u64 {
        self.byzantine_maker_rounds
    }

    /// Returns `true` if `replica` is in the Byzantine set (the last
    /// `byzantine` ids).
    pub fn is_byzantine(&self, replica: ReplicaId) -> bool {
        (replica.0 as usize) >= self.config.n - self.config.byzantine
    }

    /// Runs one consensus round: samples the duration, draws the block
    /// maker from the beacon, and finalizes.
    pub fn next_round(&mut self) -> RoundInfo {
        self.round += 1;
        let duration = self
            .rng
            .normal(self.config.round_time_mean, self.config.round_time_std)
            .max(SimDuration::from_millis(100));
        self.now += duration;
        // The random beacon: unpredictable before the round, uniform over
        // replicas.
        let block_maker = ReplicaId(self.rng.index(self.config.n) as u32);
        let maker_is_byzantine = self.is_byzantine(block_maker);
        if maker_is_byzantine {
            self.byzantine_maker_rounds += 1;
        }
        RoundInfo { round: self.round, block_maker, maker_is_byzantine, finalized_at: self.now }
    }

    /// Advances the clock without producing a block (subnet idle/stalled —
    /// used to model the Bitcoin-canister downtime of Lemma IV.3).
    pub fn stall(&mut self, duration: SimDuration) {
        self.now += duration;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_advance_time_monotonically() {
        let mut engine = ConsensusEngine::new(ConsensusConfig::thirteen_replicas(), 1);
        let mut last = SimTime::ZERO;
        for i in 1..=50 {
            let info = engine.next_round();
            assert_eq!(info.round, i);
            assert!(info.finalized_at > last);
            last = info.finalized_at;
        }
        assert_eq!(engine.round(), 50);
    }

    #[test]
    fn maker_selection_is_roughly_uniform() {
        let mut engine = ConsensusEngine::new(ConsensusConfig::thirteen_replicas(), 2);
        let mut counts = [0u32; 13];
        let rounds = 13_000;
        for _ in 0..rounds {
            counts[engine.next_round().block_maker.0 as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / rounds as f64;
            assert!((share - 1.0 / 13.0).abs() < 0.02, "replica {i} share {share}");
        }
    }

    #[test]
    fn byzantine_maker_frequency_below_one_third() {
        let mut config = ConsensusConfig::thirteen_replicas();
        config.byzantine = 4; // f = 4 for n = 13
        let mut engine = ConsensusEngine::new(config, 3);
        let rounds = 20_000;
        for _ in 0..rounds {
            engine.next_round();
        }
        let share = engine.byzantine_maker_rounds() as f64 / rounds as f64;
        assert!((share - 4.0 / 13.0).abs() < 0.02, "byzantine maker share {share}");
        assert!(share < 1.0 / 3.0);
    }

    #[test]
    fn byzantine_membership() {
        let mut config = ConsensusConfig::thirteen_replicas();
        config.byzantine = 2;
        let engine = ConsensusEngine::new(config, 4);
        assert!(!engine.is_byzantine(ReplicaId(0)));
        assert!(!engine.is_byzantine(ReplicaId(10)));
        assert!(engine.is_byzantine(ReplicaId(11)));
        assert!(engine.is_byzantine(ReplicaId(12)));
    }

    #[test]
    fn fault_bound_enforced() {
        let config = ConsensusConfig::thirteen_replicas();
        assert_eq!(config.max_faults(), 4);
        let mut over = config.clone();
        over.byzantine = 5;
        assert!(!over.within_fault_bound());
        let result = std::panic::catch_unwind(|| ConsensusEngine::new(over, 1));
        assert!(result.is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let mut e = ConsensusEngine::new(ConsensusConfig::thirteen_replicas(), seed);
            (0..20).map(|_| e.next_round().block_maker.0).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn stall_advances_clock_only() {
        let mut engine = ConsensusEngine::new(ConsensusConfig::thirteen_replicas(), 5);
        engine.stall(SimDuration::from_secs(3600));
        assert_eq!(engine.round(), 0);
        assert!(engine.now() >= SimTime::from_secs(3600));
    }
}

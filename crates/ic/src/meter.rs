//! WebAssembly-instruction metering.
//!
//! The paper's cost evaluation (§IV-B, Figures 6 and 7) is denominated in
//! *WebAssembly instructions executed*. The simulated execution layer
//! reproduces that by having canister code charge an explicit [`Meter`]
//! for each operation, with per-operation constants calibrated against
//! the magnitudes the paper reports (see EXPERIMENTS.md).

use icbtc_sim::obs::{FrameToken, Profiler};

/// An instruction counter for one message execution.
///
/// The meter doubles as the clock of a [`Profiler`]: opening a frame with
/// [`Meter::frame`] snapshots the instruction counter, and closing it
/// with [`Meter::frame_end`] attributes every instruction charged in
/// between to that frame (minus nested frames). Frame accounting never
/// changes the instruction total, so metered costs — and therefore
/// replicated state — are identical with or without profiling.
///
/// # Examples
///
/// ```
/// use icbtc_ic::Meter;
/// let mut meter = Meter::new();
/// let frame = meter.frame("hashing");
/// meter.charge(1_000);
/// meter.charge_per_byte(32, 10);
/// meter.frame_end(frame);
/// assert_eq!(meter.instructions(), 1_320);
/// assert_eq!(meter.profile().root_total(), 1_320);
/// ```
#[derive(Debug, Clone, Default, Eq)]
pub struct Meter {
    instructions: u64,
    prof: Profiler,
}

// Meter equality is instruction-count equality: the profiler only
// re-attributes charges to frames, it never changes what was charged, so
// it stays out of the comparison (and out of replicated-state checks).
impl PartialEq for Meter {
    fn eq(&self, other: &Meter) -> bool {
        self.instructions == other.instructions
    }
}

impl Meter {
    /// Creates a zeroed meter.
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Charges a flat number of instructions.
    pub fn charge(&mut self, instructions: u64) {
        self.instructions = self.instructions.saturating_add(instructions);
    }

    /// Charges `per_byte` instructions for each of `bytes` bytes.
    pub fn charge_per_byte(&mut self, bytes: usize, per_byte: u64) {
        self.charge(bytes as u64 * per_byte);
    }

    /// Instructions charged so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Resets the counter and returns the previous total. The profile is
    /// left in place; harvest it separately with [`Meter::take_profile`].
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.instructions)
    }

    /// Opens a profiler frame clocked on this meter's instruction
    /// counter. Close it with [`Meter::frame_end`].
    pub fn frame(&mut self, name: &'static str) -> FrameToken {
        self.prof.enter_at(name, self.instructions)
    }

    /// Closes a frame opened by [`Meter::frame`], attributing the
    /// instructions charged since then (exits of nested frames that were
    /// skipped by early returns are healed at the same clock).
    pub fn frame_end(&mut self, token: FrameToken) {
        self.prof.exit_at(token, self.instructions);
    }

    /// The instruction-attribution profile accumulated so far.
    // icbtc-lint: node-local -- profiles are per-replica diagnostics
    pub fn profile(&self) -> &Profiler {
        &self.prof
    }

    /// Takes the accumulated profile, leaving an empty one — the harvest
    /// point where a component folds a per-message profile into its
    /// longer-lived `Obs` profiler.
    pub fn take_profile(&mut self) -> Profiler {
        std::mem::take(&mut self.prof)
    }
}

/// Accumulates instruction counts across many executions, split by label —
/// used to regenerate Figure 6's output-insertion / input-removal
/// breakdown.
#[derive(Debug, Clone, Default)]
pub struct MeterBreakdown {
    entries: Vec<(&'static str, u64)>,
}

impl MeterBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> MeterBreakdown {
        MeterBreakdown::default()
    }

    /// Adds `instructions` under `label`.
    pub fn add(&mut self, label: &'static str, instructions: u64) {
        for entry in &mut self.entries {
            if entry.0 == label {
                entry.1 = entry.1.saturating_add(instructions);
                return;
            }
        }
        self.entries.push((label, instructions));
    }

    /// Total for one label.
    pub fn get(&self, label: &str) -> u64 {
        self.entries.iter().find(|(l, _)| *l == label).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Sum across labels.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// All labels and totals, in first-use order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = Meter::new();
        m.charge(5);
        m.charge(10);
        m.charge_per_byte(3, 4);
        assert_eq!(m.instructions(), 27);
        assert_eq!(m.take(), 27);
        assert_eq!(m.instructions(), 0);
    }

    #[test]
    fn frames_attribute_charges_without_changing_totals() {
        let mut plain = Meter::new();
        plain.charge(100);
        plain.charge(40);

        let mut framed = Meter::new();
        let outer = framed.frame("outer");
        framed.charge(100);
        let inner = framed.frame("inner");
        framed.charge(40);
        framed.frame_end(inner);
        framed.frame_end(outer);

        // Frame accounting never perturbs the replicated-visible total.
        assert_eq!(plain, framed);
        assert_eq!(framed.profile().root_total(), 140);
        let frames = framed.profile().frames();
        let outer = frames.iter().find(|f| f.path == "outer").unwrap();
        let inner = frames.iter().find(|f| f.path == "outer;inner").unwrap();
        assert_eq!(outer.self_units, 100);
        assert_eq!(inner.self_units, 40);

        let harvested = framed.take_profile();
        assert_eq!(harvested.root_total(), 140);
        assert!(framed.profile().is_empty());
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut m = Meter::new();
        m.charge(u64::MAX);
        m.charge(10);
        assert_eq!(m.instructions(), u64::MAX);
    }

    #[test]
    fn breakdown_by_label() {
        let mut b = MeterBreakdown::new();
        b.add("insert", 10);
        b.add("remove", 5);
        b.add("insert", 7);
        assert_eq!(b.get("insert"), 17);
        assert_eq!(b.get("remove"), 5);
        assert_eq!(b.get("other"), 0);
        assert_eq!(b.total(), 22);
        assert_eq!(b.entries().len(), 2);
    }
}

//! WebAssembly-instruction metering.
//!
//! The paper's cost evaluation (§IV-B, Figures 6 and 7) is denominated in
//! *WebAssembly instructions executed*. The simulated execution layer
//! reproduces that by having canister code charge an explicit [`Meter`]
//! for each operation, with per-operation constants calibrated against
//! the magnitudes the paper reports (see EXPERIMENTS.md).

/// An instruction counter for one message execution.
///
/// # Examples
///
/// ```
/// use icbtc_ic::Meter;
/// let mut meter = Meter::new();
/// meter.charge(1_000);
/// meter.charge_per_byte(32, 10);
/// assert_eq!(meter.instructions(), 1_320);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meter {
    instructions: u64,
}

impl Meter {
    /// Creates a zeroed meter.
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Charges a flat number of instructions.
    pub fn charge(&mut self, instructions: u64) {
        self.instructions = self.instructions.saturating_add(instructions);
    }

    /// Charges `per_byte` instructions for each of `bytes` bytes.
    pub fn charge_per_byte(&mut self, bytes: usize, per_byte: u64) {
        self.charge(bytes as u64 * per_byte);
    }

    /// Instructions charged so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Resets the counter and returns the previous total.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.instructions)
    }
}

/// Accumulates instruction counts across many executions, split by label —
/// used to regenerate Figure 6's output-insertion / input-removal
/// breakdown.
#[derive(Debug, Clone, Default)]
pub struct MeterBreakdown {
    entries: Vec<(&'static str, u64)>,
}

impl MeterBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> MeterBreakdown {
        MeterBreakdown::default()
    }

    /// Adds `instructions` under `label`.
    pub fn add(&mut self, label: &'static str, instructions: u64) {
        for entry in &mut self.entries {
            if entry.0 == label {
                entry.1 = entry.1.saturating_add(instructions);
                return;
            }
        }
        self.entries.push((label, instructions));
    }

    /// Total for one label.
    pub fn get(&self, label: &str) -> u64 {
        self.entries.iter().find(|(l, _)| *l == label).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Sum across labels.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// All labels and totals, in first-use order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = Meter::new();
        m.charge(5);
        m.charge(10);
        m.charge_per_byte(3, 4);
        assert_eq!(m.instructions(), 27);
        assert_eq!(m.take(), 27);
        assert_eq!(m.instructions(), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut m = Meter::new();
        m.charge(u64::MAX);
        m.charge(10);
        assert_eq!(m.instructions(), u64::MAX);
    }

    #[test]
    fn breakdown_by_label() {
        let mut b = MeterBreakdown::new();
        b.add("insert", 10);
        b.add("remove", 5);
        b.add("insert", 7);
        assert_eq!(b.get("insert"), 17);
        assert_eq!(b.get("remove"), 5);
        assert_eq!(b.get("other"), 0);
        assert_eq!(b.total(), 22);
        assert_eq!(b.entries().len(), 2);
    }
}

//! Micro-benchmarks for the hot paths behind the paper's measurements:
//! hashing and PoW checks, secp256k1 and threshold signing, Merkle trees,
//! UTXO-set ingestion, canister queries, stability computation, and
//! Algorithm 1.
//!
//! The harness is std-only (`Instant`-based timing, no external crates)
//! so the workspace builds and benches fully offline:
//!
//! ```text
//! cargo bench -p icbtc-bench
//! ```

use std::time::{Duration, Instant};

use icbtc::bitcoin::hash::{sha256, sha256d};
use icbtc::bitcoin::{merkle_root, Network, Txid};
use icbtc::canister::{CanisterCall, UtxoSet};
use icbtc::core::stability::HeaderTree;
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::SimRng;
use icbtc::tecdsa::ecdsa::PrivateKey;
use icbtc::tecdsa::protocol::{DerivationPath, ThresholdKey};
use icbtc::tecdsa::{AffinePoint, Scalar};
use icbtc_bench::chaingen::{ChainGen, ChainGenConfig};
use icbtc_bench::workload::build_query_workload;

/// Short measurement windows: several benched operations take hundreds
/// of µs to ms, and longer windows make the full suite needlessly slow
/// for CI-style runs.
const WARM_UP: Duration = Duration::from_millis(500);
const MEASUREMENT: Duration = Duration::from_secs(2);

fn format_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Runs `routine` repeatedly: first for `WARM_UP`, then for `MEASUREMENT`
/// wall time, and prints mean/min/max per-iteration timings in the
/// criterion-style `name  time: [...]` shape.
fn bench_function<R>(name: &str, mut routine: impl FnMut() -> R) {
    bench_batched(name, || (), |()| routine());
}

/// Like [`bench_function`] but excludes per-iteration `setup` cost from
/// the timings, for routines that consume their input.
fn bench_batched<I, R>(name: &str, mut setup: impl FnMut() -> I, mut routine: impl FnMut(I) -> R) {
    // Warm-up: run untimed until the window elapses.
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARM_UP {
        let input = setup();
        std::hint::black_box(routine(input));
    }

    let mut samples: Vec<f64> = Vec::new();
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASUREMENT {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        samples.push(t0.elapsed().as_nanos() as f64);
    }

    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<45} time: [{} {} {}]  ({} iterations)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len(),
    );
}

fn bench_hashing() {
    let header = [0x5au8; 80];
    bench_function("sha256_80_bytes", || sha256(std::hint::black_box(&header)));
    bench_function("sha256d_80_bytes(block_hash)", || sha256d(std::hint::black_box(&header)));
    let txids: Vec<Txid> = (0..2500u32)
        .map(|i| {
            let mut bytes = [0u8; 32];
            bytes[..4].copy_from_slice(&i.to_le_bytes());
            Txid(bytes)
        })
        .collect();
    bench_function("merkle_root_2500_txids", || merkle_root(std::hint::black_box(&txids)));
}

fn bench_pow() {
    let genesis = Network::Regtest.genesis_block().header;
    bench_function("header_pow_check", || std::hint::black_box(&genesis).meets_pow_target());
}

fn bench_secp256k1() {
    let generator = AffinePoint::generator();
    let scalar = Scalar::from_u64(0xdead_beef_cafe);
    bench_function("secp256k1_scalar_mul", || {
        std::hint::black_box(&generator).mul(std::hint::black_box(scalar))
    });
    let key = PrivateKey::from_scalar(Scalar::from_u64(31337));
    let pubkey = key.public_key();
    let digest = [7u8; 32];
    bench_function("ecdsa_sign", || key.sign(std::hint::black_box(&digest)));
    let signature = key.sign(&digest);
    bench_function("ecdsa_verify", || pubkey.verify(std::hint::black_box(&digest), &signature));
}

fn bench_threshold() {
    let mut rng = SimRng::seed_from(1);
    let key = ThresholdKey::generate(13, 9, &mut rng);
    let path = DerivationPath::root();
    bench_batched(
        "threshold_ecdsa_13_of_9_full_round",
        || SimRng::seed_from(2),
        |mut session_rng| {
            let session = key.open_ecdsa(&path, [9u8; 32], &mut session_rng);
            let partials: Vec<_> = (1..=9).map(|i| session.partial_signature(i)).collect();
            session.combine(&partials).expect("honest quorum")
        },
    );
}

fn bench_utxoset_ingestion() {
    bench_batched(
        "utxoset_ingest_block_100tx",
        || {
            let mut generator = ChainGen::new(ChainGenConfig::default().scaled_down(25), 3);
            let mut set = UtxoSet::new(Network::Regtest);
            let mut height = 0;
            // Warm the set so removals hit real entries.
            for _ in 0..5 {
                let (txs, _) = generator.next_block();
                set.ingest_block(&txs, height, &mut Meter::new(), &mut MeterBreakdown::new());
                height += 1;
            }
            let (txs, _) = generator.next_block();
            (set, txs, height)
        },
        |(mut set, txs, height)| {
            set.ingest_block(&txs, height, &mut Meter::new(), &mut MeterBreakdown::new());
            set.len()
        },
    );
}

fn bench_canister_queries() {
    let workload = build_query_workload(5, 20);
    let canister = icbtc::canister::BitcoinCanister::from_state(workload.state);
    let (small_addr, _) = workload.stable_addresses[0];
    let (big_addr, _) =
        workload.stable_addresses.iter().max_by_key(|(_, n)| *n).cloned().unwrap();
    bench_function("get_balance_small_address", || {
        canister.query(
            &CanisterCall::GetBalance { address: small_addr, min_confirmations: 0 },
            &mut Meter::new(),
        )
    });
    bench_function("get_utxos_largest_address", || {
        canister.query(
            &CanisterCall::GetUtxos { address: big_addr, filter: None },
            &mut Meter::new(),
        )
    });
}

fn bench_stability() {
    // A 60-deep tree with a persistent 20-deep fork: the worst realistic
    // shape for stability queries near the anchor.
    let genesis = Network::Regtest.genesis_block().header;
    let mut tree = HeaderTree::new(genesis);
    let mut main_parent = genesis;
    for i in 0..60u32 {
        let header = icbtc::bitcoin::BlockHeader {
            version: 2,
            prev_blockhash: main_parent.block_hash(),
            merkle_root: icbtc::bitcoin::MerkleRoot([i as u8; 32]),
            time: main_parent.time + 600,
            bits: main_parent.bits,
            nonce: i,
        };
        tree.insert(header).unwrap();
        main_parent = header;
        if i == 30 {
            let mut fork_parent = header;
            for j in 0..20u32 {
                let fork = icbtc::bitcoin::BlockHeader {
                    version: 2,
                    prev_blockhash: fork_parent.block_hash(),
                    merkle_root: icbtc::bitcoin::MerkleRoot([128 + j as u8; 32]),
                    time: fork_parent.time + 600,
                    bits: fork_parent.bits,
                    nonce: 1000 + j,
                };
                tree.insert(fork).unwrap();
                fork_parent = fork;
            }
        }
    }
    let root = tree.root();
    let root_work = tree.header(&root).unwrap().work();
    let child = tree.children(&root)[0];
    bench_function("confirmation_stability_depth60_fork20", || {
        tree.confirmation_stability(std::hint::black_box(&child))
    });
    bench_function("difficulty_stability_depth60_fork20", || {
        tree.difficulty_stability(std::hint::black_box(&child), root_work)
    });
    bench_function("best_chain_depth60_fork20", || tree.best_chain());
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_hashing();
    bench_pow();
    bench_secp256k1();
    bench_threshold();
    bench_utxoset_ingestion();
    bench_canister_queries();
    bench_stability();
}

//! Criterion micro-benchmarks for the hot paths behind the paper's
//! measurements: hashing and PoW checks, secp256k1 and threshold
//! signing, Merkle trees, UTXO-set ingestion, canister queries, stability
//! computation, and Algorithm 1.
//!
//! ```text
//! cargo bench -p icbtc-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use icbtc::bitcoin::hash::{sha256, sha256d};
use icbtc::bitcoin::{merkle_root, Network, Txid};
use icbtc::canister::{CanisterCall, UtxoSet};
use icbtc::core::stability::HeaderTree;
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::SimRng;
use icbtc::tecdsa::ecdsa::PrivateKey;
use icbtc::tecdsa::protocol::{DerivationPath, ThresholdKey};
use icbtc::tecdsa::{AffinePoint, Scalar};
use icbtc_bench::chaingen::{ChainGen, ChainGenConfig};
use icbtc_bench::workload::build_query_workload;

fn bench_hashing(c: &mut Criterion) {
    let header = [0x5au8; 80];
    c.bench_function("sha256_80_bytes", |b| b.iter(|| sha256(std::hint::black_box(&header))));
    c.bench_function("sha256d_80_bytes(block_hash)", |b| {
        b.iter(|| sha256d(std::hint::black_box(&header)))
    });
    let txids: Vec<Txid> = (0..2500u32)
        .map(|i| {
            let mut bytes = [0u8; 32];
            bytes[..4].copy_from_slice(&i.to_le_bytes());
            Txid(bytes)
        })
        .collect();
    c.bench_function("merkle_root_2500_txids", |b| {
        b.iter(|| merkle_root(std::hint::black_box(&txids)))
    });
}

fn bench_pow(c: &mut Criterion) {
    let genesis = Network::Regtest.genesis_block().header;
    c.bench_function("header_pow_check", |b| {
        b.iter(|| std::hint::black_box(&genesis).meets_pow_target())
    });
}

fn bench_secp256k1(c: &mut Criterion) {
    let generator = AffinePoint::generator();
    let scalar = Scalar::from_u64(0xdead_beef_cafe);
    c.bench_function("secp256k1_scalar_mul", |b| {
        b.iter(|| std::hint::black_box(&generator).mul(std::hint::black_box(scalar)))
    });
    let key = PrivateKey::from_scalar(Scalar::from_u64(31337));
    let pubkey = key.public_key();
    let digest = [7u8; 32];
    c.bench_function("ecdsa_sign", |b| b.iter(|| key.sign(std::hint::black_box(&digest))));
    let signature = key.sign(&digest);
    c.bench_function("ecdsa_verify", |b| {
        b.iter(|| pubkey.verify(std::hint::black_box(&digest), &signature))
    });
}

fn bench_threshold(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(1);
    let key = ThresholdKey::generate(13, 9, &mut rng);
    let path = DerivationPath::root();
    c.bench_function("threshold_ecdsa_13_of_9_full_round", |b| {
        b.iter_batched(
            || SimRng::seed_from(2),
            |mut session_rng| {
                let session = key.open_ecdsa(&path, [9u8; 32], &mut session_rng);
                let partials: Vec<_> =
                    (1..=9).map(|i| session.partial_signature(i)).collect();
                session.combine(&partials).expect("honest quorum")
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_utxoset_ingestion(c: &mut Criterion) {
    c.bench_function("utxoset_ingest_block_100tx", |b| {
        b.iter_batched(
            || {
                let mut generator =
                    ChainGen::new(ChainGenConfig::default().scaled_down(25), 3);
                let mut set = UtxoSet::new(Network::Regtest);
                let mut height = 0;
                // Warm the set so removals hit real entries.
                for _ in 0..5 {
                    let (txs, _) = generator.next_block();
                    set.ingest_block(&txs, height, &mut Meter::new(), &mut MeterBreakdown::new());
                    height += 1;
                }
                let (txs, _) = generator.next_block();
                (set, txs, height)
            },
            |(mut set, txs, height)| {
                set.ingest_block(&txs, height, &mut Meter::new(), &mut MeterBreakdown::new());
                set.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_canister_queries(c: &mut Criterion) {
    let workload = build_query_workload(5, 20);
    let canister = icbtc::canister::BitcoinCanister::from_state(workload.state);
    let (small_addr, _) = workload.stable_addresses[0];
    let (big_addr, _) = workload
        .stable_addresses
        .iter()
        .max_by_key(|(_, n)| *n)
        .cloned()
        .unwrap();
    c.bench_function("get_balance_small_address", |b| {
        b.iter(|| {
            canister.query(
                &CanisterCall::GetBalance { address: small_addr, min_confirmations: 0 },
                &mut Meter::new(),
            )
        })
    });
    c.bench_function("get_utxos_largest_address", |b| {
        b.iter(|| {
            canister.query(
                &CanisterCall::GetUtxos { address: big_addr, filter: None },
                &mut Meter::new(),
            )
        })
    });
}

fn bench_stability(c: &mut Criterion) {
    // A 60-deep tree with a persistent 20-deep fork: the worst realistic
    // shape for stability queries near the anchor.
    let genesis = Network::Regtest.genesis_block().header;
    let mut tree = HeaderTree::new(genesis);
    let mut main_parent = genesis;
    for i in 0..60u32 {
        let header = icbtc::bitcoin::BlockHeader {
            version: 2,
            prev_blockhash: main_parent.block_hash(),
            merkle_root: icbtc::bitcoin::MerkleRoot([i as u8; 32]),
            time: main_parent.time + 600,
            bits: main_parent.bits,
            nonce: i,
        };
        tree.insert(header).unwrap();
        main_parent = header;
        if i == 30 {
            let mut fork_parent = header;
            for j in 0..20u32 {
                let fork = icbtc::bitcoin::BlockHeader {
                    version: 2,
                    prev_blockhash: fork_parent.block_hash(),
                    merkle_root: icbtc::bitcoin::MerkleRoot([128 + j as u8; 32]),
                    time: fork_parent.time + 600,
                    bits: fork_parent.bits,
                    nonce: 1000 + j,
                };
                tree.insert(fork).unwrap();
                fork_parent = fork;
            }
        }
    }
    let root = tree.root();
    let root_work = tree.header(&root).unwrap().work();
    let child = tree.children(&root)[0];
    c.bench_function("confirmation_stability_depth60_fork20", |b| {
        b.iter(|| tree.confirmation_stability(std::hint::black_box(&child)))
    });
    c.bench_function("difficulty_stability_depth60_fork20", |b| {
        b.iter(|| tree.difficulty_stability(std::hint::black_box(&child), root_work))
    });
    c.bench_function("best_chain_depth60_fork20", |b| b.iter(|| tree.best_chain()));
}

criterion_group! {
    name = benches;
    // Short measurement windows: several benched operations take
    // hundreds of µs to ms, and the default 5 s windows make the full
    // suite needlessly slow for CI-style runs.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_hashing,
        bench_pow,
        bench_secp256k1,
        bench_threshold,
        bench_utxoset_ingestion,
        bench_canister_queries,
        bench_stability
}
criterion_main!(benches);

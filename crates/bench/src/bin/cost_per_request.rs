//! §IV-B cost table: requests per U.S. dollar.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin cost_per_request
//! ```
//!
//! The paper: "approximately 35,000 (1,500) requests for balances (UTXOs)
//! can be made for 1 U.S. dollar", against $1–2 per on-chain Bitcoin
//! transaction at the end of 2024. The harness measures actual metered
//! instruction counts on the workload, applies the cycles fee schedule,
//! and converts at the XDR rate.

use icbtc::canister::{BitcoinCanister, CanisterCall};
use icbtc::ic::cycles::{cycles_to_usd, FeeSchedule};
use icbtc::ic::Meter;
use icbtc::sim::metrics::Histogram;
use icbtc_bench::report::{banner, Comparison};
use icbtc_bench::workload::build_query_workload;

fn main() {
    banner("cost_per_request", "§IV-B cost paragraph (requests per USD)");

    let workload = build_query_workload(13, 2);
    let addresses: Vec<_> = workload
        .stable_addresses
        .iter()
        .chain(&workload.unstable_addresses)
        .cloned()
        .collect();
    let canister = BitcoinCanister::from_state(workload.state);
    let fees = FeeSchedule::default();

    let mut balance_cycles = Histogram::new();
    let mut utxo_cycles = Histogram::new();
    for (address, _) in &addresses {
        let mut meter = Meter::new();
        let _ = canister.query(
            &CanisterCall::GetBalance { address: *address, min_confirmations: 0 },
            &mut meter,
        );
        balance_cycles.record(fees.get_balance_fee(meter.instructions()) as f64);

        let mut meter = Meter::new();
        let _ =
            canister.query(&CanisterCall::GetUtxos { address: *address, filter: None }, &mut meter);
        utxo_cycles.record(fees.get_utxos_fee(meter.instructions()) as f64);
    }

    let balance_per_usd = 1.0 / cycles_to_usd(balance_cycles.mean() as u128);
    let utxos_per_usd = 1.0 / cycles_to_usd(utxo_cycles.mean() as u128);
    let send_tx_usd = cycles_to_usd(fees.send_transaction_fee(250));

    let mut comparison = Comparison::new();
    comparison.row("get_balance requests / USD", "≈ 35,000", format!("{balance_per_usd:.0}"));
    comparison.row("get_utxos requests / USD", "≈ 1,500", format!("{utxos_per_usd:.0}"));
    comparison.row(
        "send_transaction (250 vB) cost",
        "—",
        format!("${send_tx_usd:.4}"),
    );
    comparison.row(
        "single Bitcoin on-chain tx fee",
        "$1–2 (end of 2024)",
        "$1–2 (external reference)",
    );
    comparison.print("paper vs measured (cost)");
    println!(
        "note: a canister reads the Bitcoin state ~{:.0}× cheaper than a single\n\
         on-chain transaction costs, the economic argument of §I.",
        balance_per_usd
    );
}

//! Figure 7 (right): instructions executed for replicated UTXO requests
//! versus response size, with the stable/unstable bifurcation.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin fig7_request_instructions [scale]
//! ```
//!
//! The paper measures 5.84·10⁶ – 4.76·10⁸ instructions per `get_utxos`
//! call, clearly correlated with response size and bifurcated between
//! UTXOs served from the large stable set and UTXOs found in unstable
//! blocks (the latter are cheaper to fetch). The harness meters the same
//! call over the skewed workload and prints one series per region.

use icbtc::canister::{BitcoinCanister, CanisterCall, CanisterReply};
use icbtc::ic::Meter;
use icbtc::sim::metrics::{humanize, Histogram, Series};
use icbtc_bench::report::{banner, Comparison};
use icbtc_bench::workload::build_query_workload;

fn main() {
    banner(
        "fig7_request_instructions",
        "Figure 7 right (instructions per get_utxos vs response size, stable/unstable split)",
    );
    let scale: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    println!("workload scale: 1/{scale} of the paper's UTXO counts\n");

    let workload = build_query_workload(11, scale);
    let canister = BitcoinCanister::from_state(workload.state);

    let mut stable_series = Series::new("instructions_vs_utxos(stable_set)");
    let mut unstable_series = Series::new("instructions_vs_utxos(unstable_blocks)");
    let mut all = Histogram::new();
    let mut per_utxo_stable = Histogram::new();
    let mut per_utxo_unstable = Histogram::new();

    for (addresses, series, per_utxo) in [
        (&workload.stable_addresses, &mut stable_series, &mut per_utxo_stable),
        (&workload.unstable_addresses, &mut unstable_series, &mut per_utxo_unstable),
    ] {
        for (address, _) in addresses {
            let mut meter = Meter::new();
            let outcome = canister.query(
                &CanisterCall::GetUtxos { address: *address, filter: None },
                &mut meter,
            );
            let Ok(CanisterReply::Utxos(response)) = outcome.reply else {
                panic!("query failed");
            };
            let instructions = meter.instructions() as f64;
            all.record(instructions);
            series.push(response.utxos.len() as f64, instructions);
            if !response.utxos.is_empty() {
                per_utxo.record(instructions / response.utxos.len() as f64);
            }
        }
    }

    println!("{stable_series}");
    println!("{unstable_series}");

    let mut comparison = Comparison::new();
    comparison.row("min instructions", "5.84e6", humanize(all.min()));
    comparison.row("max instructions", "4.76e8", humanize(all.max()));
    comparison.row(
        "bifurcation (per-UTXO cost, stable vs unstable)",
        "stable several× costlier",
        format!(
            "{} vs {} instr/UTXO ({:.1}×)",
            humanize(per_utxo_stable.median()),
            humanize(per_utxo_unstable.median()),
            per_utxo_stable.median() / per_utxo_unstable.median().max(1.0)
        ),
    );
    comparison.row(
        "correlation with response size",
        "clear",
        "linear by construction of the cost model",
    );
    comparison.print("paper vs measured (Figure 7 right)");
}

//! Figure 5: growth of the UTXO set and the Bitcoin canister's space
//! consumption over two years.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin fig5_utxo_growth
//! ```
//!
//! The paper plots the canister's state growing to > 103 GiB / > 170 M
//! UTXOs by March 2025. We drive the stable UTXO set with the synthetic
//! mainnet-shaped stream (same per-block output/input ratios), print the
//! growth series at simulation scale, and extrapolate the per-UTXO
//! storage model to the two-year window for the paper-vs-measured
//! comparison.

use icbtc::canister::UtxoSet;
use icbtc::bitcoin::Network;
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::metrics::{humanize, Series};
use icbtc_bench::chaingen::{ChainGen, ChainGenConfig};
use icbtc_bench::report::{banner, Comparison};

fn main() {
    banner("fig5_utxo_growth", "Figure 5 (UTXO-set size and canister space over two years)");

    // Scale: 1/25 of mainnet per-block volume, 1/100 of the block count;
    // the growth is linear in both, so the extrapolation is exact for the
    // model.
    const VOLUME_SCALE: u64 = 25;
    const SIM_BLOCKS: u64 = 1_050; // two years ≈ 105,000 mainnet blocks
    const BLOCKS_SCALE: u64 = 100;

    let mut generator = ChainGen::new(ChainGenConfig::default().scaled_down(VOLUME_SCALE), 5);
    let mut set = UtxoSet::new(Network::Regtest);
    let mut meter = Meter::new();
    let mut breakdown = MeterBreakdown::new();
    let mut count_series = Series::new("utxo_count_vs_block(sim_scale)");
    let mut bytes_series = Series::new("state_bytes_vs_block(sim_scale)");

    for height in 0..SIM_BLOCKS {
        let (txs, _) = generator.next_block();
        set.ingest_block(&txs, height, &mut meter, &mut breakdown);
        if height % 50 == 0 || height == SIM_BLOCKS - 1 {
            count_series.push(height as f64, set.len() as f64);
            bytes_series.push(height as f64, set.byte_size() as f64);
        }
    }
    println!("\n{count_series}");
    println!("{bytes_series}");

    // Extrapolate to mainnet scale: multiply per-block volume and block
    // count back up, and add the ~95M-UTXO baseline the chain already
    // had when the two-year window of Figure 5 opens.
    const BASELINE_UTXOS: f64 = 95_000_000.0;
    let growth = set.len() as f64 * VOLUME_SCALE as f64 * BLOCKS_SCALE as f64;
    let projected_utxos = BASELINE_UTXOS + growth;
    let projected_bytes = projected_utxos * 650.0; // STABLE_BYTES_PER_UTXO
    let projected_gib = projected_bytes / (1u64 << 30) as f64;

    let mut comparison = Comparison::new();
    comparison.row("UTXOs after two years", "> 170M", humanize(projected_utxos));
    comparison.row("canister state size", "> 103 GiB", format!("{projected_gib:.1} GiB"));
    comparison.row(
        "net UTXO growth per block",
        "≈ +714 (derived)",
        format!(
            "+{:.0}",
            set.len() as f64 * VOLUME_SCALE as f64 / SIM_BLOCKS as f64
        ),
    );
    comparison.print("paper vs measured (Figure 5 endpoints)");
}

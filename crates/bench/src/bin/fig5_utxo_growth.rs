//! Figure 5: growth of the UTXO set and the Bitcoin canister's space
//! consumption over two years — now measured against the paged,
//! byte-budgeted storage engine instead of a flat per-UTXO model.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin fig5_utxo_growth -- \
//!     [--seed N] [--blocks N] [--volume-scale N] [--budget-mib N] \
//!     [--page-size N] [--sample-every N] [--out PATH] [--metrics-out PATH]
//! ```
//!
//! The paper plots the canister's state growing to > 103 GiB / > 170 M
//! UTXOs by March 2025. We drive the stable UTXO set with the synthetic
//! mainnet-shaped stream; at the defaults the run ingests a multi-million
//! UTXO chain (≈ 100× the previous harness scale) under a fixed byte
//! budget, so budget exhaustion fails loudly instead of OOMing. The
//! report (`--out`, schema_version 1, integers plus the state hash) is a
//! pure function of the flags: `scripts/verify.sh` runs this binary twice
//! at a small scale and `diff`s the outputs as the storage determinism
//! gate. The committed `BENCH_utxo.json` is the full-scale baseline.
//!
//! Two space numbers are reported: the engine's *measured* bytes (pages
//! actually allocated; entries sized by real serialized length, so
//! script-size variance counts) and the paper-endpoint projection under
//! the production 650 B/UTXO model — the gap is production overhead
//! (replication, allocator slack) our leaner layout omits.

use icbtc::bitcoin::Network;
use icbtc::canister::{StorageConfig, UtxoSet};
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::metrics::{humanize, Series};
use icbtc_bench::chaingen::{ChainGen, ChainGenConfig};
use icbtc_bench::report::{banner, Comparison};

struct Args {
    seed: u64,
    blocks: u64,
    volume_scale: u64,
    budget_mib: u64,
    page_size: usize,
    sample_every: u64,
    out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 5,
        blocks: 4_200,
        volume_scale: 1,
        budget_mib: 2_048,
        page_size: 8_192,
        sample_every: 100,
        out: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().unwrap_or_else(|| usage(what));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--blocks" => {
                args.blocks = value("--blocks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--blocks must be a count"));
            }
            "--volume-scale" => {
                args.volume_scale = value("--volume-scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--volume-scale must be a divisor >= 1"));
            }
            "--budget-mib" => {
                args.budget_mib = value("--budget-mib needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--budget-mib must be a MiB count"));
            }
            "--page-size" => {
                args.page_size = value("--page-size needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--page-size must be bytes"));
            }
            "--sample-every" => {
                args.sample_every = value("--sample-every needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--sample-every must be a block count"));
            }
            "--out" => args.out = Some(value("--out needs a path")),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out needs a path")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if args.blocks == 0 || args.volume_scale == 0 || args.sample_every == 0 {
        usage("--blocks, --volume-scale and --sample-every must be positive");
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: fig5_utxo_growth [--seed N] [--blocks N] [--volume-scale N] [--budget-mib N]\n\
         \u{20}                       [--page-size N] [--sample-every N] [--out PATH] [--metrics-out PATH]\n\
         \n\
         --seed N          simulation seed (default 5)\n\
         --blocks N        blocks to ingest (default 4200)\n\
         --volume-scale N  divisor on mainnet per-block tx volume (default 1)\n\
         --budget-mib N    storage byte budget in MiB; exhaustion exits 3 (default 2048)\n\
         --page-size N     storage page size in bytes (default 8192)\n\
         --sample-every N  trajectory sample cadence in blocks (default 100)\n\
         --out P           write the JSON report to P (always printed to stdout)\n\
         --metrics-out P   write the storage metrics snapshot JSON to P"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Mainnet blocks in Figure 5's two-year window.
const TWO_YEAR_BLOCKS: u64 = 105_000;
/// UTXOs the chain already held when the window opens.
const BASELINE_UTXOS: u64 = 95_000_000;

fn main() {
    let args = parse_args();
    banner("fig5_utxo_growth", "Figure 5 (UTXO-set size and canister space over two years)");

    let mut generator =
        ChainGen::new(ChainGenConfig::default().scaled_down(args.volume_scale), args.seed);
    let mut set = UtxoSet::with_config(
        Network::Regtest,
        StorageConfig { page_size: args.page_size, byte_budget: args.budget_mib << 20 },
    );
    let mut meter = Meter::new();
    let mut breakdown = MeterBreakdown::new();

    eprintln!(
        "# fig5_utxo_growth: ingesting {} blocks (volume-scale {}, budget {} MiB, seed {})...",
        args.blocks, args.volume_scale, args.budget_mib, args.seed
    );
    let mut trajectory: Vec<(u64, u64, u64, u64)> = Vec::new();
    let mut count_series = Series::new("utxo_count_vs_block(sim_scale)");
    let mut bytes_series = Series::new("state_bytes_vs_block(sim_scale)");
    for height in 0..args.blocks {
        let (txs, _) = generator.next_block();
        if let Err(error) = set.try_ingest_block(&txs, height, &mut meter, &mut breakdown) {
            eprintln!("error: storage budget exhausted at height {height}: {error}");
            std::process::exit(3);
        }
        if height.is_multiple_of(args.sample_every) || height == args.blocks - 1 {
            let stats = set.storage_stats();
            trajectory.push((height, set.len() as u64, stats.bytes_reserved, stats.pages_allocated));
            count_series.push(height as f64, set.len() as f64);
            bytes_series.push(height as f64, stats.bytes_reserved as f64);
        }
        if height > 0 && height.is_multiple_of(500) {
            eprintln!(
                "# fig5_utxo_growth: height {height}, {} UTXOs, {} MiB reserved",
                set.len(),
                set.byte_size() >> 20
            );
        }
    }

    let stats = set.storage_stats();
    let utxos = set.len() as u64;
    let state_hash: String =
        set.state_hash().iter().map(|b| format!("{b:02x}")).collect();

    println!("\n{count_series}");
    println!("{bytes_series}");

    // Extrapolate to the paper's two-year endpoint: multiply per-block
    // volume and block count back up, add the baseline, and apply the
    // production 650 B/UTXO model for the GiB comparison.
    let projected_utxos =
        BASELINE_UTXOS + utxos * args.volume_scale * TWO_YEAR_BLOCKS / args.blocks;
    let projected_model_bytes = projected_utxos * icbtc::canister::metering::STABLE_BYTES_PER_UTXO;
    let measured_bytes_per_utxo = stats.bytes_reserved / utxos.max(1);

    let mut comparison = Comparison::new();
    comparison.row("UTXOs after two years", "> 170M", humanize(projected_utxos as f64));
    comparison.row(
        "canister state size (650 B/UTXO model)",
        "> 103 GiB",
        format!("{:.1} GiB", projected_model_bytes as f64 / (1u64 << 30) as f64),
    );
    comparison.row(
        "engine bytes/UTXO (measured, this run)",
        "≈ 650 (incl. production overhead)",
        format!("{measured_bytes_per_utxo}"),
    );
    comparison.row(
        "net UTXO growth per block",
        "≈ +714 (derived)",
        format!("+{}", utxos * args.volume_scale / args.blocks),
    );
    comparison.print("paper vs measured (Figure 5 endpoints)");

    let mut trajectory_json = String::new();
    for (i, (height, count, bytes, pages)) in trajectory.iter().enumerate() {
        if i > 0 {
            trajectory_json.push_str(",\n");
        }
        trajectory_json.push_str(&format!(
            "    {{ \"height\": {height}, \"utxos\": {count}, \"bytes_reserved\": {bytes}, \"pages\": {pages} }}"
        ));
    }
    let report = format!(
        "{{\n\
         \u{20} \"schema_version\": 1,\n\
         \u{20} \"bench\": \"fig5_utxo_growth\",\n\
         \u{20} \"seed\": {seed},\n\
         \u{20} \"blocks\": {blocks},\n\
         \u{20} \"volume_scale\": {volume_scale},\n\
         \u{20} \"page_size\": {page_size},\n\
         \u{20} \"byte_budget\": {byte_budget},\n\
         \u{20} \"utxo_count\": {utxos},\n\
         \u{20} \"pages_allocated\": {pages},\n\
         \u{20} \"bytes_reserved\": {bytes_reserved},\n\
         \u{20} \"bytes_used\": {bytes_used},\n\
         \u{20} \"budget_headroom\": {headroom},\n\
         \u{20} \"entry_bytes\": {entry_bytes},\n\
         \u{20} \"bytes_per_utxo\": {bytes_per_utxo},\n\
         \u{20} \"model_bytes_per_utxo\": {model},\n\
         \u{20} \"projected_utxos_two_years\": {projected_utxos},\n\
         \u{20} \"projected_model_bytes_two_years\": {projected_model_bytes},\n\
         \u{20} \"state_hash\": \"{state_hash}\",\n\
         \u{20} \"trajectory\": [\n{trajectory_json}\n\u{20} ]\n\
         }}",
        seed = args.seed,
        blocks = args.blocks,
        volume_scale = args.volume_scale,
        page_size = stats.page_size,
        byte_budget = stats.byte_budget,
        utxos = utxos,
        pages = stats.pages_allocated,
        bytes_reserved = stats.bytes_reserved,
        bytes_used = stats.bytes_used,
        headroom = stats.budget_headroom,
        entry_bytes = stats.entry_bytes,
        bytes_per_utxo = measured_bytes_per_utxo,
        model = icbtc::canister::metering::STABLE_BYTES_PER_UTXO,
        projected_utxos = projected_utxos,
        projected_model_bytes = projected_model_bytes,
        state_hash = state_hash,
        trajectory_json = trajectory_json,
    );

    println!("{report}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("error: cannot write report to {path}: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.metrics_out {
        // The same per-page gauges the live canister exports through its
        // obs registry (`BitcoinCanister::refresh_state_gauges`).
        let mut metrics = icbtc::sim::obs::MetricsRegistry::new();
        metrics.set_gauge("canister_storage_pages_allocated", stats.pages_allocated as i64);
        metrics.set_gauge("canister_storage_bytes_reserved", stats.bytes_reserved as i64);
        metrics.set_gauge("canister_storage_bytes_used", stats.bytes_used as i64);
        metrics.set_gauge("canister_storage_budget_headroom_bytes", stats.budget_headroom as i64);
        metrics.set_gauge("canister_utxo_count", utxos as i64);
        if let Err(e) = std::fs::write(path, metrics.snapshot_json()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
    }
}

//! Lemma IV.2: probability that a bounded-hash-power attacker ever leads
//! the honest chain by c* blocks.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin security_fork
//! ```
//!
//! Definition IV.2 assumes the attacker's chain never exceeds the honest
//! height by c* (at honest difficulty). The harness measures how often
//! that assumption could be violated for various hash-power shares α and
//! thresholds c*, over month-long windows (~4,300 blocks): the empirical
//! justification for δ = 144 being "conservative".

use icbtc::btcnet::adversary::mining_race;
use icbtc::sim::metrics::Table;
use icbtc::sim::SimRng;
use icbtc_bench::report::banner;

fn main() {
    banner("security_fork", "Lemma IV.2 / Definition IV.2 (attacker lead probability)");
    let mut rng = SimRng::seed_from(7);
    const WINDOW_BLOCKS: u64 = 4_300; // ≈ one month of mainnet blocks
    const TRIALS: usize = 2_000;

    let mut table = Table::new(vec![
        "attacker hash share α",
        "P[lead ≥ 6]",
        "P[lead ≥ 12]",
        "P[lead ≥ 36]",
        "P[lead ≥ 144]",
    ]);
    for &alpha in &[0.05f64, 0.10, 0.20, 0.30, 0.40, 0.45, 0.49] {
        let mut hits = [0u32; 4];
        for _ in 0..TRIALS {
            let (_, max_lead) = mining_race(alpha, WINDOW_BLOCKS, &mut rng);
            for (i, &threshold) in [6i64, 12, 36, 144].iter().enumerate() {
                if max_lead >= threshold {
                    hits[i] += 1;
                }
            }
        }
        let p = |h: u32| format!("{:.4}", h as f64 / TRIALS as f64);
        table.row(vec![format!("{alpha:.2}"), p(hits[0]), p(hits[1]), p(hits[2]), p(hits[3])]);
    }
    println!("\n{table}");
    println!(
        "paper: δ = 144 means the attacker must out-mine the whole network by 144\n\
         blocks to corrupt the canister state. Even at α = 0.49 over a month, a\n\
         144-block lead never occurs; at realistic α it is negligible for c* ≥ 6.\n\
         (An attacker at 1% mines ~10 blocks/week in expectation — footnote 10.)"
    );
}

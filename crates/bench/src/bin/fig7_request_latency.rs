//! Figure 7 (left/center): response time of replicated and non-replicated
//! `get_balance` / `get_utxos` requests over the 1000-address workload.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin fig7_request_latency [scale]
//! ```
//!
//! The paper reports: replicated requests average below 10 s (minimum
//! ≈ 7 s, p90 ≈ 18 s); queries have medians ≈ 220 ms (`get_balance`) and
//! ≈ 310 ms (`get_utxos`) with p90 below 0.5 s and 2.5 s. The harness
//! loads the skewed workload into a canister hosted on a simulated
//! 13-replica subnet and measures both request classes end-to-end.

use icbtc::canister::{BitcoinCanister, CanisterCall};
use icbtc::ic::consensus::ConsensusConfig;
use icbtc::ic::Subnet;
use icbtc::sim::metrics::{Histogram, Series};
use icbtc_bench::report::{banner, Comparison};
use icbtc_bench::workload::build_query_workload;

fn main() {
    banner(
        "fig7_request_latency",
        "Figure 7 left/center (replicated and query response times)",
    );
    let scale: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("workload scale: 1/{scale} of the paper's UTXO counts\n");

    let workload = build_query_workload(7, scale);
    let addresses: Vec<_> = workload
        .stable_addresses
        .iter()
        .chain(&workload.unstable_addresses)
        .cloned()
        .collect();
    let canister = BitcoinCanister::from_state(workload.state);
    let mut subnet = Subnet::new(canister, ConsensusConfig::thirteen_replicas(), 7);

    let mut replicated_balance = Histogram::new();
    let mut replicated_utxos = Histogram::new();
    let mut query_balance = Histogram::new();
    let mut query_utxos = Histogram::new();
    let mut latency_vs_count = Series::new("query_utxos_latency_s_vs_utxo_count");

    // Queries: one pair per address (cheap).
    for (address, count) in &addresses {
        let (_, _, latency) = subnet.query(
            |canister, meter| {
                canister.query(
                    &CanisterCall::GetBalance { address: *address, min_confirmations: 0 },
                    meter,
                )
            },
            |_| 16,
        );
        query_balance.record(latency.as_secs_f64());
        let (outcome, _, latency) = subnet.query(
            |canister, meter| {
                canister.query(&CanisterCall::GetUtxos { address: *address, filter: None }, meter)
            },
            |outcome| match &outcome.reply {
                Ok(icbtc::canister::CanisterReply::Utxos(r)) => 64 + r.utxos.len() * 48,
                _ => 32,
            },
        );
        let _ = outcome;
        query_utxos.record(latency.as_secs_f64());
        latency_vs_count.push(*count as f64, latency.as_secs_f64());
    }

    // Replicated calls: a sample of 150 addresses (each waits for rounds).
    for (address, _) in addresses.iter().step_by(addresses.len() / 150) {
        for (call, histogram) in [
            (
                CanisterCall::GetBalance { address: *address, min_confirmations: 0 },
                &mut replicated_balance,
            ),
            (CanisterCall::GetUtxos { address: *address, filter: None }, &mut replicated_utxos),
        ] {
            let id = subnet.submit(call);
            'wait: loop {
                let report = subnet.execute_round(|_, _| {});
                for result in report.results {
                    if result.id == id {
                        histogram.record(result.latency().as_secs_f64());
                        break 'wait;
                    }
                }
            }
        }
    }

    println!("{latency_vs_count}");

    let mut comparison = Comparison::new();
    comparison.row(
        "replicated: mean",
        "< 10 s",
        format!(
            "{:.1} s (balance) / {:.1} s (utxos)",
            replicated_balance.mean(),
            replicated_utxos.mean()
        ),
    );
    comparison.row(
        "replicated: min",
        "≈ 7 s",
        format!("{:.1} s", replicated_balance.min().min(replicated_utxos.min())),
    );
    comparison.row(
        "replicated: p90",
        "≈ 18 s",
        format!(
            "{:.1} s / {:.1} s",
            replicated_balance.percentile(90.0),
            replicated_utxos.percentile(90.0)
        ),
    );
    comparison.row(
        "query get_balance: median",
        "≈ 220 ms",
        format!("{:.0} ms", query_balance.median() * 1e3),
    );
    comparison.row(
        "query get_utxos: median",
        "≈ 310 ms",
        format!("{:.0} ms", query_utxos.median() * 1e3),
    );
    comparison.row(
        "query p90",
        "< 0.5 s / < 2.5 s",
        format!(
            "{:.2} s / {:.2} s",
            query_balance.percentile(90.0),
            query_utxos.percentile(90.0)
        ),
    );
    comparison.print("paper vs measured (Figure 7 left/center)");
}

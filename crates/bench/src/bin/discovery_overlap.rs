//! §III-B discovery parameters: do ℓ = 5 random connections per adapter
//! give "mostly disjoint" peer sets for subnets of 13–40 replicas?
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin discovery_overlap
//! ```
//!
//! The paper reports that the thresholds (t_l = 500, t_u = 2000 on
//! mainnet) and ℓ = 5 produce mostly disjoint sets of connected Bitcoin
//! nodes across a subnet's adapters. The harness runs the actual
//! discovery/selection machinery against address pools of realistic size
//! and measures pairwise overlap and per-node reuse.

use icbtc::sim::metrics::Table;
use icbtc::sim::SimRng;
use icbtc_bench::report::banner;

fn main() {
    banner("discovery_overlap", "§III-B (disjointness of adapter peer sets)");
    let mut rng = SimRng::seed_from(17);
    const TRIALS: usize = 500;

    let mut table = Table::new(vec![
        "subnet size n",
        "pool size (t_u)",
        "l",
        "avg pairwise overlap",
        "P[all adapters disjoint]",
        "max reuse of one node",
    ]);
    for &(n, pool, l) in &[(13usize, 2000usize, 5usize), (28, 2000, 5), (40, 2000, 5), (13, 1000, 5), (40, 500, 5)] {
        let mut overlap_sum = 0.0;
        let mut fully_disjoint = 0;
        let mut max_reuse = 0usize;
        for _ in 0..TRIALS {
            let selections: Vec<Vec<usize>> =
                (0..n).map(|_| rng.sample_indices(pool, l)).collect();
            // Pairwise overlap.
            let mut pair_overlap = 0usize;
            let mut pairs = 0usize;
            for i in 0..n {
                for j in i + 1..n {
                    pairs += 1;
                    pair_overlap +=
                        selections[i].iter().filter(|x| selections[j].contains(x)).count();
                }
            }
            overlap_sum += pair_overlap as f64 / pairs as f64;
            // Global disjointness and reuse.
            let mut counts = std::collections::HashMap::new();
            for sel in &selections {
                for &x in sel {
                    *counts.entry(x).or_insert(0usize) += 1;
                }
            }
            let reuse = counts.values().copied().max().unwrap_or(0);
            max_reuse = max_reuse.max(reuse);
            if reuse <= 1 {
                fully_disjoint += 1;
            }
        }
        table.row(vec![
            n.to_string(),
            pool.to_string(),
            l.to_string(),
            format!("{:.4}", overlap_sum / TRIALS as f64),
            format!("{:.2}", fully_disjoint as f64 / TRIALS as f64),
            max_reuse.to_string(),
        ]);
    }
    println!("\n{table}");
    println!(
        "paper: 'these numbers result in mostly disjoint sets of connected Bitcoin\n\
         nodes at every Bitcoin adapter for common subnet sizes of 13 to 40 nodes'\n\
         — pairwise overlap stays near zero at t_u = 2000 even for n = 40."
    );
}

//! Deterministic hot-path profile report over a full four-layer run.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin prof_report -- \
//!     [--seed N] [--blocks N] [--queries N] [--top N] [--out PATH]
//! ```
//!
//! Boots a regtest deployment, mines `--blocks` coinbases to a wallet
//! address, syncs the canister, issues `--queries` cached queries in a
//! fixed call mix, and prints [`System::profile_report`] — the merged
//! frame tree of all four layers (canister instructions; adapter, ic
//! and btcnet modeled service units) as a top-N self-cost table plus
//! collapsed-stack flamegraph lines. The output is a pure function of
//! the flags: `scripts/verify.sh` runs it twice and `diff`s the results
//! as the profiler determinism gate.

use icbtc::canister::CanisterCall;
use icbtc::contracts::Wallet;
use icbtc::sim::SimTime;
use icbtc::system::{System, SystemConfig};

struct Args {
    seed: u64,
    blocks: usize,
    queries: u64,
    top: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { seed: 42, blocks: 12, queries: 64, top: 25, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().unwrap_or_else(|| usage(what));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--blocks" => {
                args.blocks = value("--blocks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--blocks must be a count"));
            }
            "--queries" => {
                args.queries = value("--queries needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--queries must be a count"));
            }
            "--top" => {
                args.top = value("--top needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--top must be a count"));
            }
            "--out" => args.out = Some(value("--out needs a path")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: prof_report [--seed N] [--blocks N] [--queries N] [--top N] [--out PATH]\n\
         \n\
         --seed N     simulation seed (default 42)\n\
         --blocks N   coinbases mined to the probe wallet before syncing (default 12)\n\
         --queries N  cached queries issued after the sync (default 64)\n\
         --top N      rows in the self-cost table (default 25)\n\
         --out P      write the report to P (always printed to stdout)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();

    eprintln!(
        "# prof_report: seed {}, {} blocks, {} queries...",
        args.seed, args.blocks, args.queries
    );
    let mut system = System::new(SystemConfig::regtest(args.seed));
    let wallet = Wallet::new("prof-report-probe");
    let address = wallet.address(&system);
    system.btc_mut().run_until(SimTime::from_secs(1800));
    system.fund_address(&address, args.blocks);
    if !system.sync_canister(20_000) {
        eprintln!("error: canister failed to sync");
        std::process::exit(2);
    }

    // Fixed query mix over the same address: balance / first-page
    // get_utxos / fee percentiles, so the cache sees repeats (hits) and
    // the report covers both the cold and the cached query paths.
    for i in 0..args.queries {
        let call = match i % 4 {
            0 | 1 => CanisterCall::GetBalance { address, min_confirmations: 0 },
            2 => CanisterCall::GetUtxos { address, filter: None },
            _ => CanisterCall::GetFeePercentiles,
        };
        system.query_cached(call);
    }

    let report = system.profile_report(args.top);
    println!("{report}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("error: cannot write report to {path}: {e}");
            std::process::exit(2);
        }
    }
}

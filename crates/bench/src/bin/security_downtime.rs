//! Lemma IV.3: post-downtime fork injection succeeds only if Byzantine
//! replicas win c* consecutive block-maker slots — probability < 3^{-c*}.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin security_downtime
//! ```
//!
//! Two measurements: (a) Monte-Carlo streak probabilities over the
//! consensus engine's beacon for f = 4 of n = 13, against the 3^{-c*}
//! bound; (b) a full-system demonstration in which Byzantine makers feed
//! a prepared fork after canister downtime and the canister nevertheless
//! tracks the real chain.

use icbtc::btcnet::adversary::SecretForkMiner;
use icbtc::btcnet::NodeId;
use icbtc::ic::consensus::{ConsensusConfig, ConsensusEngine};
use icbtc::sim::metrics::Table;
use icbtc::system::{DowntimeAttack, System, SystemConfig};
use icbtc_bench::report::banner;
use icbtc::sim::{SimDuration, SimTime};

fn streak_probability(c_star: u32, windows: u64, seed: u64) -> f64 {
    let mut config = ConsensusConfig::thirteen_replicas();
    config.byzantine = 4;
    let mut engine = ConsensusEngine::new(config, seed);
    // Probability that a fresh window of c* rounds is all-Byzantine:
    // sample disjoint windows.
    let mut all_byzantine = 0u64;
    for _ in 0..windows {
        let mut all = true;
        for _ in 0..c_star {
            if !engine.next_round().maker_is_byzantine {
                all = false;
            }
        }
        if all {
            all_byzantine += 1;
        }
    }
    all_byzantine as f64 / windows as f64
}

fn main() {
    banner("security_downtime", "Lemma IV.3 (post-downtime injection, 3^-c* bound)");

    // (a) Streak probabilities vs the bound.
    let mut table = Table::new(vec!["c*", "3^-c* bound", "(f/n)^c* expected", "measured (f=4, n=13)"]);
    for &c_star in &[1u32, 2, 3, 4, 5] {
        let bound = (1.0f64 / 3.0).powi(c_star as i32);
        let expected = (4.0f64 / 13.0).powi(c_star as i32);
        let measured = streak_probability(c_star, 300_000, 99);
        table.row(vec![
            c_star.to_string(),
            format!("{bound:.5}"),
            format!("{expected:.5}"),
            format!("{measured:.5}"),
        ]);
    }
    println!("\n{table}");

    // (b) Full-system demonstration.
    println!("full-system demonstration (f = 4 of n = 13, 6-block fork):");
    let mut config = SystemConfig::regtest(31337);
    config.consensus.byzantine = 4;
    let mut system = System::new(config);
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(8000));

    let view = system.btc().node(NodeId(0)).chain().clone();
    let mut fork = SecretForkMiner::branch_at(&view, view.tip_hash()).expect("tip exists");
    let fork_blocks = fork.extend(6, 3);
    system.stall_subnet(SimDuration::from_secs(2 * 3600));
    system.set_downtime_attack(DowntimeAttack::new(fork_blocks));
    let synced = system.sync_canister(8000);
    let delivered = system.clear_downtime_attack();
    let (tip_hash, tip_height) = system.canister().state().best_tip();
    let on_real_chain =
        system.btc().node(NodeId(0)).chain().best_chain_hash_at(tip_height) == Some(tip_hash);
    println!(
        "  synced: {synced}; fork blocks the Byzantine makers delivered: {delivered}; \n\
         canister tip {tip_height} on the real chain: {on_real_chain}"
    );
    assert!(on_real_chain, "canister must track the real chain");
    println!(
        "\npaper: each Byzantine maker can deliver only ONE fork block per round\n\
         (Algorithm 1's single-block rule), and any honest maker's adapter reveals\n\
         the real headers — so the attack needs c* Byzantine makers in a row."
    );
}

//! Ablation: the δ trade-off the paper calls out in §III-C — larger δ
//! lowers reorganization risk but makes queries linearly more expensive
//! (more unstable blocks to scan).
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin ablation_delta
//! ```

use icbtc::bitcoin::pow::median_time_past;
use icbtc::bitcoin::{merkle_root, Amount, Block, BlockHeader, Network};
use icbtc::btcnet::adversary::mining_race;
use icbtc::canister::{BitcoinCanisterState, UtxoSet};
use icbtc::core::{GetSuccessorsResponse, IntegrationParams};
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::metrics::Table;
use icbtc::sim::SimRng;
use icbtc_bench::report::banner;

/// Builds a canister whose unstable region holds exactly `depth` blocks,
/// each carrying outputs for one query address.
fn state_with_unstable_depth(depth: u64) -> (BitcoinCanisterState, icbtc::bitcoin::Address) {
    let params = IntegrationParams::for_network(Network::Regtest)
        .with_stability_delta(depth + 5);
    let genesis = Network::Regtest.genesis_block().header;
    let address = icbtc::bitcoin::Address::new(
        Network::Regtest,
        icbtc::bitcoin::AddressKind::P2wpkh([7; 20]),
    );

    let mut utxos = UtxoSet::new(Network::Regtest);
    utxos.ingest_block(&[], 0, &mut Meter::new(), &mut MeterBreakdown::new());
    let mut state = BitcoinCanisterState::new(params);
    state.install_snapshot(utxos, vec![genesis]);

    let mut prev = genesis;
    let mut times = vec![genesis.time];
    let mut blocks = Vec::new();
    for i in 0..depth {
        let coinbase = icbtc::bitcoin::builder::coinbase_transaction(
            i + 1,
            Amount::from_btc_int(1),
            address.script_pubkey(),
            i,
        );
        let txdata = vec![coinbase];
        let mtp = median_time_past(&times);
        let mut header = BlockHeader {
            version: 2,
            prev_blockhash: prev.block_hash(),
            merkle_root: merkle_root(&txdata.iter().map(|t| t.txid()).collect::<Vec<_>>()),
            time: mtp + 600,
            bits: genesis.bits,
            nonce: 0,
        };
        while !header.meets_pow_target() {
            header.nonce += 1;
        }
        times.push(header.time);
        prev = header;
        blocks.push(Block { header, txdata });
    }
    let now = times.last().unwrap() + 60;
    let report = state.process_response(
        GetSuccessorsResponse { blocks, next: Vec::new() },
        now,
        &mut Meter::new(),
    );
    assert!(report.stabilized.is_empty());
    (state, address)
}

fn main() {
    banner("ablation_delta", "§III-C design choice: δ security/cost trade-off");
    let mut rng = SimRng::seed_from(5);
    const WINDOW: u64 = 4_300; // ~1 month
    const TRIALS: usize = 1_500;

    let mut table = Table::new(vec![
        "δ",
        "get_balance instructions",
        "P[reorg past anchor] α=0.30",
        "P[reorg past anchor] α=0.45",
    ]);
    for &delta in &[2u64, 6, 12, 36, 72, 144] {
        // Query cost: the unstable scan depth tracks δ.
        let scan_depth = delta.min(72); // keep block construction bounded
        let (state, address) = state_with_unstable_depth(scan_depth);
        let mut meter = Meter::new();
        let _ = state.get_balance(&address, 0, &mut meter).unwrap();
        let instructions = meter.instructions();

        // Security: a reorg deeper than δ needs the attacker to out-mine
        // the network by δ blocks (Lemma IV.2).
        let reorg_probability = |alpha: f64, rng: &mut SimRng| {
            let mut hits = 0;
            for _ in 0..TRIALS {
                let (_, lead) = mining_race(alpha, WINDOW, rng);
                if lead >= delta as i64 {
                    hits += 1;
                }
            }
            hits as f64 / TRIALS as f64
        };
        let p30 = reorg_probability(0.30, &mut rng);
        let p45 = reorg_probability(0.45, &mut rng);
        table.row(vec![
            delta.to_string(),
            icbtc::sim::metrics::humanize(instructions as f64),
            format!("{p30:.4}"),
            format!("{p45:.4}"),
        ]);
    }
    println!("\n{table}");
    println!(
        "the paper's δ = 144: query cost grows linearly in δ (the unstable scan)\n\
         while the anchor-reorg probability collapses to ~0 even for a 45% attacker\n\
         — 'a conservative choice, aiming for high security … while still\n\
         guaranteeing a fast processing of requests.'"
    );
}

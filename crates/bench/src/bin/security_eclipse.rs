//! Lemma IV.1: eclipse resistance of random adapter connections.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin security_eclipse
//! ```
//!
//! The lemma: with every adapter connecting to ℓ uniformly random Bitcoin
//! nodes and the corrupted fraction φ ≪ n^{-1/ℓ}, every adapter reaches a
//! correct node with overwhelming probability. The harness sweeps φ, ℓ
//! and n, comparing the closed form `1 − (1 − φ^ℓ)^n` against Monte-Carlo
//! sampling of the actual discovery selection.

use icbtc::adapter::eclipse_probability;
use icbtc::sim::metrics::Table;
use icbtc::sim::SimRng;
use icbtc_bench::report::banner;

fn monte_carlo(phi: f64, l: usize, n: usize, trials: usize, rng: &mut SimRng) -> f64 {
    let pool = 10_000usize;
    let corrupted = (pool as f64 * phi) as usize;
    let mut eclipsed = 0usize;
    for _ in 0..trials {
        let mut any_adapter_eclipsed = false;
        for _ in 0..n {
            let picks = rng.sample_indices(pool, l);
            if picks.iter().all(|&p| p < corrupted) {
                any_adapter_eclipsed = true;
                break;
            }
        }
        if any_adapter_eclipsed {
            eclipsed += 1;
        }
    }
    eclipsed as f64 / trials as f64
}

fn main() {
    banner("security_eclipse", "Lemma IV.1 (eclipse probability vs φ, ℓ, n)");
    let mut rng = SimRng::seed_from(42);
    let mut table = Table::new(vec!["n", "l", "phi", "closed form", "monte carlo (20k trials)"]);
    for &n in &[13usize, 40] {
        for &l in &[3usize, 5, 8] {
            for &phi in &[0.1f64, 0.3, 0.5, 0.6, 0.8] {
                let closed = eclipse_probability(phi, l, n);
                let measured = monte_carlo(phi, l, n, 20_000, &mut rng);
                table.row(vec![
                    n.to_string(),
                    l.to_string(),
                    format!("{phi:.1}"),
                    format!("{closed:.5}"),
                    format!("{measured:.5}"),
                ]);
            }
        }
    }
    println!("\n{table}");
    println!(
        "paper: for n = 13, ℓ = 5 the requirement is φ ≪ 0.6 — the closed form\n\
         confirms the eclipse probability is negligible well below that bound,\n\
         and ℓ ∈ Θ(log n) (e.g. ℓ = 8 at n = 40) restores any constant margin."
    );
}

//! Lemma IV.1: eclipse resistance of random adapter connections.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin security_eclipse
//! ```
//!
//! The lemma: with every adapter connecting to ℓ uniformly random Bitcoin
//! nodes and the corrupted fraction φ ≪ n^{-1/ℓ}, every adapter reaches a
//! correct node with overwhelming probability. The harness sweeps φ, ℓ
//! and n, comparing the closed form `1 − (1 − φ^ℓ)^n` against Monte-Carlo
//! sampling of the actual discovery selection. Trial tallies go through
//! the deterministic metrics registry (`icbtc_sim::obs`) rather than
//! hand-rolled counters, so the sweep's bookkeeping uses the same
//! instrument as the runtime layers.

use icbtc::adapter::eclipse_probability;
use icbtc::sim::metrics::Table;
use icbtc::sim::obs::MetricsRegistry;
use icbtc::sim::SimRng;
use icbtc_bench::report::banner;

/// Runs one sweep cell, tallying into `registry` under the given labels:
/// `eclipse_trials_total` counts trials, `eclipse_eclipsed_total` counts
/// trials in which at least one adapter drew only corrupted peers.
fn monte_carlo(
    phi: f64,
    l: usize,
    n: usize,
    trials: usize,
    rng: &mut SimRng,
    registry: &mut MetricsRegistry,
    labels: &[(&'static str, &'static str)],
) {
    let pool = 10_000usize;
    let corrupted = (pool as f64 * phi) as usize;
    for _ in 0..trials {
        registry.inc_with("eclipse_trials_total", labels);
        for _ in 0..n {
            let picks = rng.sample_indices(pool, l);
            if picks.iter().all(|&p| p < corrupted) {
                registry.inc_with("eclipse_eclipsed_total", labels);
                break;
            }
        }
    }
}

/// The (n, ℓ, φ) sweep grid with the static label sets the registry
/// requires: every cell is a distinct labelled series of the same two
/// counters.
const GRID: &[(usize, &str, usize, &str, f64, &str)] = &[
    (13, "13", 3, "3", 0.1, "0.1"),
    (13, "13", 3, "3", 0.3, "0.3"),
    (13, "13", 3, "3", 0.5, "0.5"),
    (13, "13", 3, "3", 0.6, "0.6"),
    (13, "13", 3, "3", 0.8, "0.8"),
    (13, "13", 5, "5", 0.1, "0.1"),
    (13, "13", 5, "5", 0.3, "0.3"),
    (13, "13", 5, "5", 0.5, "0.5"),
    (13, "13", 5, "5", 0.6, "0.6"),
    (13, "13", 5, "5", 0.8, "0.8"),
    (13, "13", 8, "8", 0.1, "0.1"),
    (13, "13", 8, "8", 0.3, "0.3"),
    (13, "13", 8, "8", 0.5, "0.5"),
    (13, "13", 8, "8", 0.6, "0.6"),
    (13, "13", 8, "8", 0.8, "0.8"),
    (40, "40", 3, "3", 0.1, "0.1"),
    (40, "40", 3, "3", 0.3, "0.3"),
    (40, "40", 3, "3", 0.5, "0.5"),
    (40, "40", 3, "3", 0.6, "0.6"),
    (40, "40", 3, "3", 0.8, "0.8"),
    (40, "40", 5, "5", 0.1, "0.1"),
    (40, "40", 5, "5", 0.3, "0.3"),
    (40, "40", 5, "5", 0.5, "0.5"),
    (40, "40", 5, "5", 0.6, "0.6"),
    (40, "40", 5, "5", 0.8, "0.8"),
    (40, "40", 8, "8", 0.1, "0.1"),
    (40, "40", 8, "8", 0.3, "0.3"),
    (40, "40", 8, "8", 0.5, "0.5"),
    (40, "40", 8, "8", 0.6, "0.6"),
    (40, "40", 8, "8", 0.8, "0.8"),
];

const TRIALS: usize = 20_000;

fn main() {
    banner("security_eclipse", "Lemma IV.1 (eclipse probability vs φ, ℓ, n)");
    let mut rng = SimRng::seed_from(42);
    let mut registry = MetricsRegistry::new();
    let mut table = Table::new(vec!["n", "l", "phi", "closed form", "monte carlo (20k trials)"]);

    for &(n, n_label, l, l_label, phi, phi_label) in GRID {
        let labels: &[(&'static str, &'static str)] =
            &[("l", l_label), ("n", n_label), ("phi", phi_label)];
        monte_carlo(phi, l, n, TRIALS, &mut rng, &mut registry, labels);

        let trials = registry.counter_with("eclipse_trials_total", labels);
        let eclipsed = registry.counter_with("eclipse_eclipsed_total", labels);
        assert_eq!(trials as usize, TRIALS, "every trial must be tallied");
        let closed = eclipse_probability(phi, l, n);
        let measured = eclipsed as f64 / trials as f64;
        table.row(vec![
            n.to_string(),
            l.to_string(),
            format!("{phi:.1}"),
            format!("{closed:.5}"),
            format!("{measured:.5}"),
        ]);
    }

    // Cross-check: the unlabelled totals across all cells must equal the
    // grid volume — the registry lost nothing.
    assert_eq!(
        registry.counter_total("eclipse_trials_total") as usize,
        GRID.len() * TRIALS,
        "per-cell tallies must sum to the sweep volume"
    );

    println!("\n{table}");
    println!(
        "paper: for n = 13, ℓ = 5 the requirement is φ ≪ 0.6 — the closed form\n\
         confirms the eclipse probability is negligible well below that bound,\n\
         and ℓ ∈ Θ(log n) (e.g. ℓ = 8 at n = 40) restores any constant margin."
    );
}

//! Durability-and-recovery soak: a full integrated system under a
//! deterministic lifecycle plan — periodic checkpoints, canister
//! upgrades, replica crash–catch-up, and shadow-replica divergence
//! detection with seeded corruption.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin recovery_soak -- \
//!     [--seed N] [--rounds N] [--plan NAME] \
//!     [--cadence N --upgrades N --crashes N --corruptions N] \
//!     [--out PATH] [--metrics-out PATH]
//! ```
//!
//! With `--plan NAME` the named builtin lifecycle plan runs (see
//! `LifecyclePlan::builtin_names()`); with the randomized flags, the
//! schedule is drawn from the run's own seed, so a (seed, flags) pair
//! always produces the same schedule. The report (integers plus the
//! final state hash, schema_version 1) is a pure function of the flags:
//! `scripts/verify.sh` runs the binary twice at a small scale and
//! `diff`s the outputs as the recovery determinism gate, then holds the
//! result against `BENCH_recovery_gate.json` via `scripts/perfdiff.sh`.
//! Headline figures: MTTR (modeled restore + replay time) and replay
//! length per catch-up.

use icbtc::ic::LifecyclePlan;
use icbtc::sim::{SimRng, SimTime};
use icbtc::system::{System, SystemConfig};

struct Args {
    seed: u64,
    rounds: u64,
    mine_every: u64,
    plan: Option<String>,
    cadence: u64,
    upgrades: usize,
    crashes: usize,
    corruptions: usize,
    out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        rounds: 60,
        mine_every: 5,
        plan: None,
        cadence: 10,
        upgrades: 0,
        crashes: 0,
        corruptions: 0,
        out: None,
        metrics_out: None,
    };
    let mut randomized = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().unwrap_or_else(|| usage(what));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--rounds" => {
                args.rounds = value("--rounds needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--rounds must be a count"));
            }
            "--mine-every" => {
                args.mine_every = value("--mine-every needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--mine-every must be a round count"));
            }
            "--plan" => args.plan = Some(value("--plan needs a builtin name")),
            "--cadence" => {
                randomized = true;
                args.cadence = value("--cadence needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--cadence must be a round count"));
            }
            "--upgrades" => {
                randomized = true;
                args.upgrades = value("--upgrades needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--upgrades must be a count"));
            }
            "--crashes" => {
                randomized = true;
                args.crashes = value("--crashes needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--crashes must be a count"));
            }
            "--corruptions" => {
                randomized = true;
                args.corruptions = value("--corruptions needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--corruptions must be a count"));
            }
            "--out" => args.out = Some(value("--out needs a path")),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out needs a path")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if args.plan.is_some() && randomized {
        usage("--plan and the randomized flags (--cadence/--upgrades/--crashes/--corruptions) are mutually exclusive");
    }
    if args.plan.is_none() && !randomized {
        args.plan = Some("mixed".to_string());
    }
    if args.rounds == 0 {
        usage("--rounds must be positive");
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: recovery_soak [--seed N] [--rounds N] [--plan NAME]\n\
         \u{20}                    [--cadence N --upgrades N --crashes N --corruptions N]\n\
         \u{20}                    [--out PATH] [--metrics-out PATH]\n\
         \n\
         --seed N         simulation seed (default 42)\n\
         --rounds N       IC rounds to run (default 60)\n\
         --mine-every N   force a Bitcoin block every N rounds so the tip keeps\n\
         \u{20}                moving during the soak (default 5, 0 = never)\n\
         --plan NAME      builtin lifecycle plan: checkpoints, upgrades, crashes,\n\
         \u{20}                corruption, mixed (default mixed)\n\
         --cadence N      randomized plan: checkpoint every N rounds (default 10)\n\
         --upgrades N     randomized plan: canister upgrades to schedule\n\
         --crashes N      randomized plan: crash/restart catch-ups to schedule\n\
         --corruptions N  randomized plan: shadow corruptions to schedule\n\
         --out P          write the JSON report to P (always printed to stdout)\n\
         --metrics-out P  write the merged metrics snapshot JSON to P"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();

    let (plan, plan_name) = match &args.plan {
        Some(name) => {
            let plan = LifecyclePlan::builtin(name).unwrap_or_else(|| {
                usage(&format!(
                    "unknown plan `{name}` (builtins: {})",
                    LifecyclePlan::builtin_names().join(", ")
                ))
            });
            (plan, name.clone())
        }
        None => {
            // The schedule rides the run's own seed so (seed, flags) is
            // byte-reproducible.
            let mut rng = SimRng::seed_from(args.seed.wrapping_add(0x7ec0));
            let plan = LifecyclePlan::randomized(
                &mut rng,
                args.rounds,
                args.cadence,
                args.upgrades,
                args.crashes,
                args.corruptions,
            );
            (plan, "randomized".to_string())
        }
    };
    if plan.ends_at() > args.rounds {
        usage(&format!(
            "plan schedules events through round {} but the run is only {} rounds",
            plan.ends_at(),
            args.rounds
        ));
    }

    eprintln!(
        "# recovery_soak: {} rounds under plan `{plan_name}` (cadence {}, seed {})...",
        args.rounds, plan.checkpoint_every, args.seed
    );
    let cadence = plan.checkpoint_every;
    let mut system = System::new(SystemConfig::regtest(args.seed));
    system.btc_mut().run_until(SimTime::from_secs(3600));
    system.set_lifecycle_plan(plan);
    for round in 1..=args.rounds {
        // Keep the Bitcoin tip moving so checkpoints, catch-up replays,
        // and divergence checks exercise a live chain, not an idle one.
        if args.mine_every > 0 && round.is_multiple_of(args.mine_every) {
            system.btc_mut().mine_block_paying(
                icbtc::btcnet::NodeId(0),
                icbtc::bitcoin::Script::new_op_return(b"recovery_soak"),
            );
        }
        system.step_round();
    }

    let stats = system.recovery_stats().clone();
    let metrics = system.merged_metrics();
    let checkpoints_taken = metrics.counter("ic_checkpoint_total");
    let checkpoint_bytes_total = metrics.counter("ic_checkpoint_bytes_total");
    let checkpoint_last_bytes = metrics.gauge("ic_checkpoint_bytes").max(0) as u64;
    let duplicates_dropped = metrics.counter("canister_ingest_duplicate_dropped_total");
    let state_hash: String =
        system.canister().state_hash().iter().map(|b| format!("{b:02x}")).collect();
    let mttr_ns_mean = stats.mttr_ns_total / stats.catchups.max(1);

    let report = format!(
        "{{\n\
         \u{20} \"schema_version\": 1,\n\
         \u{20} \"bench\": \"recovery_soak\",\n\
         \u{20} \"seed\": {seed},\n\
         \u{20} \"rounds\": {rounds},\n\
         \u{20} \"plan\": \"{plan_name}\",\n\
         \u{20} \"checkpoint_cadence\": {cadence},\n\
         \u{20} \"checkpoints_taken\": {checkpoints_taken},\n\
         \u{20} \"checkpoint_bytes_total\": {checkpoint_bytes_total},\n\
         \u{20} \"checkpoint_last_bytes\": {checkpoint_last_bytes},\n\
         \u{20} \"upgrades\": {upgrades},\n\
         \u{20} \"catchups\": {catchups},\n\
         \u{20} \"catchup_matches\": {catchup_matches},\n\
         \u{20} \"replayed_rounds_total\": {replayed_rounds_total},\n\
         \u{20} \"replayed_rounds_max\": {replayed_rounds_max},\n\
         \u{20} \"replayed_instructions_total\": {replayed_instructions_total},\n\
         \u{20} \"mttr_ns_total\": {mttr_ns_total},\n\
         \u{20} \"mttr_ns_max\": {mttr_ns_max},\n\
         \u{20} \"mttr_ns_mean\": {mttr_ns_mean},\n\
         \u{20} \"divergence_checks\": {divergence_checks},\n\
         \u{20} \"corruptions_injected\": {corruptions_injected},\n\
         \u{20} \"divergence_detected\": {divergence_detected},\n\
         \u{20} \"duplicates_dropped\": {duplicates_dropped},\n\
         \u{20} \"state_hash\": \"{state_hash}\"\n\
         }}",
        seed = args.seed,
        rounds = args.rounds,
        plan_name = plan_name,
        cadence = cadence,
        checkpoints_taken = checkpoints_taken,
        checkpoint_bytes_total = checkpoint_bytes_total,
        checkpoint_last_bytes = checkpoint_last_bytes,
        upgrades = stats.upgrades,
        catchups = stats.catchups,
        catchup_matches = stats.catchup_matches,
        replayed_rounds_total = stats.replayed_rounds_total,
        replayed_rounds_max = stats.replayed_rounds_max,
        replayed_instructions_total = stats.replayed_instructions_total,
        mttr_ns_total = stats.mttr_ns_total,
        mttr_ns_max = stats.mttr_ns_max,
        mttr_ns_mean = mttr_ns_mean,
        divergence_checks = stats.divergence_checks,
        corruptions_injected = stats.corruptions_injected,
        divergence_detected = stats.divergence_detected,
        duplicates_dropped = duplicates_dropped,
        state_hash = state_hash,
    );

    if stats.catchups > stats.catchup_matches {
        eprintln!(
            "error: {} of {} catch-ups failed to reconverge with the live replica",
            stats.catchups - stats.catchup_matches,
            stats.catchups
        );
        println!("{report}");
        std::process::exit(3);
    }
    if stats.divergence_detected != stats.corruptions_injected {
        eprintln!(
            "error: {} corruptions injected but {} divergences detected",
            stats.corruptions_injected, stats.divergence_detected
        );
        println!("{report}");
        std::process::exit(3);
    }

    println!("{report}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("error: cannot write report to {path}: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, metrics.snapshot_json()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
    }
}

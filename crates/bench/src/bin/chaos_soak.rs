//! Chaos soak: one Bitcoin adapter against a deliberately hostile
//! simulated Bitcoin network.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin chaos_soak -- \
//!     [--seed N] [--plan NAME] [--recovery SECS] [--json] [--trace-out PATH]
//! ```
//!
//! Boots an 8-node regtest network, installs one of the built-in fault
//! plans (`loss`, `partition`, `churn`, `crash`, `stall`, `malformed`,
//! `mixed`, or `none`), and soaks a single adapter — header sync, block
//! fetch with backoff, peer scoring, stall detection — through the whole
//! fault window plus a recovery tail. A canister-like consumer drives
//! `GetSuccessors` throughout, so graceful-degradation paths (partial
//! responses, deferred fetches) are exercised too.
//!
//! On exit it prints the merged btcnet + adapter metrics registry (text
//! tables by default, `snapshot_json()` with `--json`) and, with
//! `--trace-out`, writes both layers' JSONL traces to a file. Everything
//! emitted is a pure function of `(seed, plan)`: `scripts/verify.sh`
//! runs this binary twice with the same arguments and `diff`s the
//! outputs as the chaos determinism gate.

use icbtc::adapter::BitcoinAdapter;
use icbtc::bitcoin::Network;
use icbtc::btcnet::network::{BtcNetwork, NetworkConfig};
use icbtc::btcnet::{FaultPlan, CHAOS_NODES};
use icbtc::core::{GetSuccessorsRequest, IntegrationParams};
use icbtc::sim::{SimDuration, SimTime};

struct Args {
    seed: u64,
    plan: String,
    recovery_secs: u64,
    json: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        plan: "mixed".to_string(),
        recovery_secs: 1800,
        json: false,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--plan" => {
                args.plan = it.next().unwrap_or_else(|| usage("--plan needs a name"));
            }
            "--recovery" => {
                let v = it.next().unwrap_or_else(|| usage("--recovery needs a value"));
                args.recovery_secs =
                    v.parse().unwrap_or_else(|_| usage("--recovery must be seconds (u64)"));
            }
            "--json" => args.json = true,
            "--trace-out" => {
                args.trace_out =
                    Some(it.next().unwrap_or_else(|| usage("--trace-out needs a path")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: chaos_soak [--seed N] [--plan NAME] [--recovery SECS] [--json] [--trace-out PATH]\n\
         \n\
         --seed N        simulation seed (default 42)\n\
         --plan NAME     fault plan: {}, or `none` (default mixed)\n\
         --recovery S    fault-free tail after the plan ends, seconds (default 1800)\n\
         --json          print the merged metrics snapshot as JSON (default: text tables)\n\
         --trace-out P   write the JSONL traces of both layers to P",
        FaultPlan::builtin_names().join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn resolve_plan(name: &str) -> FaultPlan {
    if name == "none" {
        return FaultPlan::none();
    }
    FaultPlan::builtin(name).unwrap_or_else(|| usage(&format!("unknown plan `{name}`")))
}

fn main() {
    let args = parse_args();
    let plan = resolve_plan(&args.plan);

    let mut net = BtcNetwork::new(NetworkConfig::regtest(CHAOS_NODES), args.seed);
    let deadline = plan.ends_at() + SimDuration::from_secs(args.recovery_secs);
    net.set_fault_plan(plan);

    // ℓ = 5 of 8 nodes: enough overlap that every plan's misbehaving
    // peers are actually talked to.
    let params = IntegrationParams::for_network(Network::Regtest).with_connections(5);
    let mut adapter = BitcoinAdapter::new(params, args.seed.wrapping_add(1));

    // Canister-like consumer state for the GetSuccessors drive.
    let genesis = Network::Regtest.genesis_block().header;
    let mut processed = Vec::new();
    let mut next_request = SimTime::ZERO;

    while net.now() < deadline {
        adapter.step(&mut net);
        if net.now() >= next_request {
            let request = GetSuccessorsRequest {
                anchor: genesis,
                anchor_height: 0,
                processed: processed.clone(),
                transactions: Vec::new(),
            };
            let response = adapter.handle_request(&mut net, &request);
            processed.extend(response.blocks.iter().map(|b| b.block_hash()));
            next_request = net.now() + SimDuration::from_secs(30);
        }
        net.run_until(net.now() + SimDuration::from_secs(5));
    }
    // A few fault-free upkeep passes so the final gauges settle.
    for _ in 0..5 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(5));
    }

    let mut metrics = icbtc::sim::obs::MetricsRegistry::new();
    metrics.merge_from(&net.obs().metrics);
    metrics.merge_from(&adapter.obs().metrics);
    if args.json {
        println!("{}", metrics.snapshot_json());
    } else {
        println!(
            "# chaos_soak: seed={} plan={} deadline={}s",
            args.seed,
            args.plan,
            deadline.as_nanos() / 1_000_000_000
        );
        let heights: Vec<String> = (0..CHAOS_NODES)
            .map(|i| net.node(icbtc::btcnet::NodeId(i as u32)).chain().tip_height().to_string())
            .collect();
        println!(
            "# net tip={} adapter tip={} blocks consumed={} node heights=[{}]",
            net.best_height(),
            adapter.best_header_height(),
            processed.len(),
            heights.join(",")
        );
        println!("{}", metrics.snapshot_text());
    }

    if let Some(path) = args.trace_out {
        let mut out = String::new();
        out.push_str(&net.obs().trace.dump_jsonl());
        out.push_str(&adapter.obs().trace.dump_jsonl());
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(2);
        }
    }
}

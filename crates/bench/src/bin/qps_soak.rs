//! Query-plane throughput soak: a large synthetic address population
//! under a mixed `get_utxos` / `get_balance` / fee-percentiles load.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin qps_soak -- \
//!     [--seed N] [--addresses N] [--utxo-scale N] [--requests N] \
//!     [--rate N] [--ingest-every N] [--no-cache] \
//!     [--out PATH] [--metrics-out PATH]
//! ```
//!
//! Loads `--addresses` synthetic addresses (default 1,000,000) whose
//! per-address UTXO counts follow the paper's published skew (each
//! window of 1000 addresses carries the exact Figure-7 bucket mix,
//! divided by `--utxo-scale` to bound memory), then drives the batched
//! query plane of a simulated subnet: `--rate` queries submitted per
//! round — 45% `get_balance`, 45% first-page `get_utxos`, 10% fee
//! percentiles, with 60% of traffic on a hot set of 4096 addresses —
//! while a pre-mined block is ingested every `--ingest-every` rounds so
//! the tip moves and the query cache is exercised through invalidation.
//!
//! The report (written to `--out`, schema_version 1, integers only) is a
//! pure function of the flags: `scripts/verify.sh` runs this binary
//! twice at a small scale and `diff`s the outputs as the query-plane
//! determinism gate. The committed `BENCH_qps.json` is the full-scale
//! baseline that seeds the perf trajectory.

use icbtc::canister::{BitcoinCanister, CanisterCall, QueryCache};
use icbtc::ic::consensus::ConsensusConfig;
use icbtc::ic::{QueryPlaneConfig, Subnet};
use icbtc::sim::metrics::Histogram;
use icbtc::sim::{SimRng, SimTime};
use icbtc_bench::workload::build_soak_workload;

struct Args {
    seed: u64,
    addresses: usize,
    utxo_scale: usize,
    requests: u64,
    rate: usize,
    ingest_every: u64,
    no_cache: bool,
    out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        addresses: 1_000_000,
        utxo_scale: 250,
        requests: 100_000,
        rate: 256,
        ingest_every: 30,
        no_cache: false,
        out: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().unwrap_or_else(|| usage(what));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--addresses" => {
                args.addresses = value("--addresses needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--addresses must be a count"));
            }
            "--utxo-scale" => {
                args.utxo_scale = value("--utxo-scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--utxo-scale must be a divisor >= 1"));
            }
            "--requests" => {
                args.requests = value("--requests needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--requests must be a count"));
            }
            "--rate" => {
                args.rate = value("--rate needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--rate must be queries per round"));
            }
            "--ingest-every" => {
                args.ingest_every = value("--ingest-every needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--ingest-every must be a round count"));
            }
            "--no-cache" => args.no_cache = true,
            "--out" => args.out = Some(value("--out needs a path")),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out needs a path")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if args.addresses == 0 || args.requests == 0 || args.rate == 0 {
        usage("--addresses, --requests and --rate must be positive");
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: qps_soak [--seed N] [--addresses N] [--utxo-scale N] [--requests N]\n\
         \u{20}               [--rate N] [--ingest-every N] [--no-cache] [--out PATH] [--metrics-out PATH]\n\
         \n\
         --seed N          simulation seed (default 42)\n\
         --addresses N     synthetic address population (default 1000000)\n\
         --utxo-scale N    divisor applied to the paper's UTXO counts (default 250)\n\
         --requests N      total queries to issue (default 100000)\n\
         --rate N          queries submitted per round (default 256)\n\
         --ingest-every N  ingest a pre-mined block every N rounds (default 30, 0 = never)\n\
         --no-cache        run with the query cache disabled (A/B baseline)\n\
         --out P           write the JSON report to P (always printed to stdout)\n\
         --metrics-out P   write the merged metrics snapshot JSON to P"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Hot-set size for the skewed request stream. Sized so the hot keys
/// (two call types per address, plus fee percentiles) fit inside the
/// default cache capacity.
const HOT_SET: usize = 1024;

fn main() {
    let args = parse_args();

    eprintln!(
        "# qps_soak: loading {} addresses (utxo-scale {}, seed {})...",
        args.addresses, args.utxo_scale, args.seed
    );
    // Enough pre-mined blocks for the whole soak at the configured cadence.
    let planned_rounds = args.requests / args.rate as u64 + 64;
    let num_ingest = match planned_rounds.checked_div(args.ingest_every) {
        None => 0,
        Some(n) => (n + 2).min(64) as usize,
    };
    let workload = build_soak_workload(args.seed, args.addresses, args.utxo_scale, num_ingest);
    let addresses = workload.addresses;
    let mut ingest_blocks = workload.ingest_blocks.into_iter();

    let mut canister = BitcoinCanister::from_state(workload.state);
    if args.no_cache {
        canister.set_query_cache(QueryCache::with_capacity(0));
    }
    let mut subnet = Subnet::new(canister, ConsensusConfig::thirteen_replicas(), args.seed);
    subnet.set_query_plane(QueryPlaneConfig {
        max_per_round: args.rate.saturating_mul(2).max(16),
        concurrency: 4,
    });

    let hot = addresses.len().min(HOT_SET);
    let mut reqs = SimRng::seed_from(args.seed.wrapping_add(0x9c5));
    let next_call = |rng: &mut SimRng| -> CanisterCall {
        let address = if rng.below(100) < 60 {
            addresses[rng.index(hot)].0
        } else {
            addresses[rng.index(addresses.len())].0
        };
        match rng.below(100) {
            0..=44 => CanisterCall::GetBalance { address, min_confirmations: 0 },
            45..=89 => CanisterCall::GetUtxos { address, filter: None },
            _ => CanisterCall::GetFeePercentiles,
        }
    };

    eprintln!("# qps_soak: issuing {} queries at {}/round...", args.requests, args.rate);
    let mut submitted: u64 = 0;
    let mut completed: u64 = 0;
    let mut errors: u64 = 0;
    let mut ingests: u64 = 0;
    let mut rounds: u64 = 0;
    let mut instructions_total: u64 = 0;
    let mut latencies_ms = Histogram::new();

    while completed < args.requests {
        for _ in 0..args.rate {
            if submitted == args.requests {
                break;
            }
            subnet.submit_query(next_call(&mut reqs));
            submitted += 1;
        }
        let ingest_now =
            args.ingest_every > 0 && rounds > 0 && rounds.is_multiple_of(args.ingest_every);
        let block = if ingest_now { ingest_blocks.next() } else { None };
        if block.is_some() {
            ingests += 1;
        }
        let report = subnet.execute_round(|canister, ctx| {
            if let Some(block) = block {
                let now_unix = block.header.time + 60;
                let response = icbtc::core::GetSuccessorsResponse {
                    blocks: vec![block],
                    next: Vec::new(),
                };
                let report = canister.ingest_response(response, now_unix, ctx);
                assert_eq!(report.blocks_accepted, 1, "soak ingest rejected: {:?}", report.rejected);
            }
        });
        for result in &report.query_results {
            completed += 1;
            instructions_total += result.instructions;
            latencies_ms.record(result.latency().as_nanos() as f64 / 1_000_000.0);
            if result.output.reply.is_err() {
                errors += 1;
            }
        }
        rounds += 1;
        assert!(rounds < 10_000_000, "soak starved: {completed}/{} completed", args.requests);
    }

    let metrics = &subnet.state().obs().metrics;
    let hits = metrics.counter("canister_qcache_hits_total");
    let misses = metrics.counter("canister_qcache_misses_total");
    let evictions = metrics.counter("canister_qcache_evictions_total");
    let invalidations = metrics.counter("canister_qcache_invalidations_total");
    let hit_permille = hits.saturating_mul(1000) / (hits + misses).max(1);

    // Profiler-guided hot-path record: the cache hit path used to
    // re-serialize the reply at a flat QUERY_CACHE_HIT; it now charges
    // the probe plus a per-byte copy of the size serialized once at
    // fill. "before" is modeled from the retained constant, "after" is
    // the measured hit-path cost.
    let hit_instructions_after = metrics.counter("canister_qcache_hit_instructions_total");
    let hit_instructions_before = hits.saturating_mul(icbtc::canister::metering::QUERY_CACHE_HIT);

    let elapsed_nanos = subnet.now().saturating_since(SimTime::ZERO).as_nanos().max(1);
    let requests_per_sec = completed.saturating_mul(1_000_000_000) / elapsed_nanos;
    let p50 = latencies_ms.percentile(50.0).round() as u64;
    let p90 = latencies_ms.percentile(90.0).round() as u64;
    let p99 = latencies_ms.percentile(99.0).round() as u64;

    let report = format!(
        "{{\n\
         \u{20} \"schema_version\": 1,\n\
         \u{20} \"bench\": \"qps_soak\",\n\
         \u{20} \"seed\": {seed},\n\
         \u{20} \"addresses\": {addresses},\n\
         \u{20} \"utxo_scale\": {utxo_scale},\n\
         \u{20} \"requests\": {requests},\n\
         \u{20} \"rate_per_round\": {rate},\n\
         \u{20} \"ingest_every\": {ingest_every},\n\
         \u{20} \"cache_enabled\": {cache_enabled},\n\
         \u{20} \"rounds\": {rounds},\n\
         \u{20} \"sim_millis\": {sim_millis},\n\
         \u{20} \"requests_per_sec\": {requests_per_sec},\n\
         \u{20} \"latency_ms_p50\": {p50},\n\
         \u{20} \"latency_ms_p90\": {p90},\n\
         \u{20} \"latency_ms_p99\": {p99},\n\
         \u{20} \"cache_hits\": {hits},\n\
         \u{20} \"cache_misses\": {misses},\n\
         \u{20} \"cache_evictions\": {evictions},\n\
         \u{20} \"cache_invalidations\": {invalidations},\n\
         \u{20} \"cache_hit_permille\": {hit_permille},\n\
         \u{20} \"query_instructions_total\": {instructions_total},\n\
         \u{20} \"instructions_per_request\": {per_request},\n\
         \u{20} \"hot_path\": {{\n\
         \u{20}   \"optimization\": \"qcache_hit_precomputed_serialized_size\",\n\
         \u{20}   \"hit_instructions_before\": {hit_before},\n\
         \u{20}   \"hit_instructions_after\": {hit_after},\n\
         \u{20}   \"hit_instructions_per_hit_before\": {per_hit_before},\n\
         \u{20}   \"hit_instructions_per_hit_after\": {per_hit_after}\n\
         \u{20} }},\n\
         \u{20} \"ingests\": {ingests},\n\
         \u{20} \"errors\": {errors}\n\
         }}",
        seed = args.seed,
        addresses = args.addresses,
        utxo_scale = args.utxo_scale,
        requests = args.requests,
        rate = args.rate,
        ingest_every = args.ingest_every,
        cache_enabled = u64::from(!args.no_cache),
        rounds = rounds,
        sim_millis = elapsed_nanos / 1_000_000,
        requests_per_sec = requests_per_sec,
        p50 = p50,
        p90 = p90,
        p99 = p99,
        hits = hits,
        misses = misses,
        evictions = evictions,
        invalidations = invalidations,
        hit_permille = hit_permille,
        instructions_total = instructions_total,
        per_request = instructions_total / completed.max(1),
        hit_before = hit_instructions_before,
        hit_after = hit_instructions_after,
        per_hit_before = icbtc::canister::metering::QUERY_CACHE_HIT,
        per_hit_after = hit_instructions_after / hits.max(1),
        ingests = ingests,
        errors = errors,
    );

    println!("{report}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("error: cannot write report to {path}: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.metrics_out {
        let mut merged = icbtc::sim::obs::MetricsRegistry::new();
        merged.merge_from(metrics);
        merged.merge_from(&subnet.obs().metrics);
        if let Err(e) = std::fs::write(path, merged.snapshot_json()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
    }
}

//! Figure 6: instructions per ingested block (left) and the
//! output-insertion / input-removal split (right).
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin fig6_block_ingestion
//! ```
//!
//! The paper measures ≈ 21.6 billion WebAssembly instructions per
//! ingested mainnet block over six months, with roughly half spent on
//! output insertions and half on input removals. The harness ingests a
//! full-volume synthetic stream under the calibrated instruction model,
//! records every block into the deterministic metrics registry
//! (`icbtc_sim::obs`) — the same instrument the canister itself uses —
//! and reads the reported numbers back from the registry, cross-checked
//! against the meter's ground truth.

use icbtc::bitcoin::Network;
use icbtc::canister::UtxoSet;
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::metrics::{humanize, Series};
use icbtc::sim::obs::{MetricsRegistry, INSTRUCTION_BOUNDS};
use icbtc_bench::chaingen::{ChainGen, ChainGenConfig};
use icbtc_bench::report::{banner, Comparison};

fn main() {
    banner(
        "fig6_block_ingestion",
        "Figure 6 (instructions per ingested block; insertion/removal split)",
    );

    // Full mainnet per-block volume; six simulated months of Figure 6
    // would be ~26k blocks — 200 suffice for stable statistics.
    const BLOCKS: u64 = 200;
    let mut generator = ChainGen::new(ChainGenConfig::default(), 6);
    let mut set = UtxoSet::new(Network::Regtest);

    let mut registry = MetricsRegistry::new();
    registry.register_histogram("fig6_block_instructions", INSTRUCTION_BOUNDS);

    let mut per_block = Series::new("instructions_vs_block");
    let mut insert_series = Series::new("output_insertion_instructions_vs_block");
    let mut remove_series = Series::new("input_removal_instructions_vs_block");
    let mut ground_truth: u64 = 0;

    for height in 0..BLOCKS {
        let (txs, _) = generator.next_block();
        let mut meter = Meter::new();
        let mut breakdown = MeterBreakdown::new();
        set.ingest_block(&txs, height, &mut meter, &mut breakdown);
        let total = meter.instructions();
        ground_truth += total;

        registry.observe("fig6_block_instructions", total);
        registry.add("fig6_instructions_total", total);
        registry.add_with(
            "fig6_split_instructions_total",
            &[("kind", "output_insertion")],
            breakdown.get("output_insertion"),
        );
        registry.add_with(
            "fig6_split_instructions_total",
            &[("kind", "input_removal")],
            breakdown.get("input_removal"),
        );

        per_block.push(height as f64, total as f64);
        insert_series.push(height as f64, breakdown.get("output_insertion") as f64);
        remove_series.push(height as f64, breakdown.get("input_removal") as f64);
    }

    // The registry is the reporting source of truth; the meter sum is the
    // ground truth it must agree with exactly.
    assert_eq!(
        registry.counter("fig6_instructions_total"),
        ground_truth,
        "registry counter diverged from metered instructions"
    );
    let histogram = registry
        .histogram("fig6_block_instructions")
        .expect("histogram was registered above");
    assert_eq!(histogram.count(), BLOCKS, "one observation per ingested block");
    assert_eq!(histogram.sum(), ground_truth, "histogram sum must equal metered total");

    println!("\n{per_block}");
    println!("{insert_series}");
    println!("{remove_series}");
    println!("{}", registry.snapshot_text());

    let insert = registry
        .counter_with("fig6_split_instructions_total", &[("kind", "output_insertion")])
        as f64;
    let remove = registry
        .counter_with("fig6_split_instructions_total", &[("kind", "input_removal")])
        as f64;
    let mut comparison = Comparison::new();
    comparison.row("avg instructions per block", "≈ 21.6B", humanize(histogram.mean()));
    comparison.row(
        "min / max per block",
        "varies with block size",
        format!("{} / {}", humanize(histogram.min() as f64), humanize(histogram.max() as f64)),
    );
    comparison.row(
        "output-insertion share",
        "≈ 50%",
        format!("{:.0}%", 100.0 * insert / (insert + remove)),
    );
    comparison.row(
        "input-removal share",
        "≈ 50%",
        format!("{:.0}%", 100.0 * remove / (insert + remove)),
    );
    comparison.print("paper vs measured (Figure 6)");
}

//! Dump the deterministic observability layer for a full-system run.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin obs_trace -- \
//!     [--seed N] [--rounds N] [--json] [--trace-out PATH]
//! ```
//!
//! Boots the integrated system (simulated Bitcoin network + 13-replica
//! subnet + Bitcoin canister), runs it for `--rounds` consensus rounds,
//! then emits the merged metrics registry (text tables by default,
//! `snapshot_json()` with `--json`) on stdout and, with `--trace-out`,
//! the concatenated JSONL trace of all four layers to a file.
//!
//! Everything printed is a pure function of the seed: `scripts/verify.sh`
//! runs this binary twice with the same seed and `diff`s both outputs as
//! the observability determinism gate.

use icbtc::system::{System, SystemConfig};
use icbtc::sim::SimTime;

struct Args {
    seed: u64,
    rounds: usize,
    json: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { seed: 42, rounds: 200, json: false, trace_out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--rounds" => {
                let v = it.next().unwrap_or_else(|| usage("--rounds needs a value"));
                args.rounds = v.parse().unwrap_or_else(|_| usage("--rounds must be a usize"));
            }
            "--json" => args.json = true,
            "--trace-out" => {
                args.trace_out = Some(it.next().unwrap_or_else(|| usage("--trace-out needs a path")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: obs_trace [--seed N] [--rounds N] [--json] [--trace-out PATH]\n\
         \n\
         --seed N        simulation seed (default 42)\n\
         --rounds N      consensus rounds to execute (default 200)\n\
         --json          print the merged metrics snapshot as JSON (default: text tables)\n\
         --trace-out P   write the JSONL trace of all layers to P"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();

    let mut system = System::new(SystemConfig::regtest(args.seed));
    // Give the Bitcoin network a head start so ingestion has blocks to
    // pull: one simulated hour of Poisson mining before the subnet runs.
    system.btc_mut().run_until(SimTime::from_secs(3600));
    system.run_rounds(args.rounds);

    let metrics = system.merged_metrics();
    if args.json {
        println!("{}", metrics.snapshot_json());
    } else {
        println!("# obs_trace: seed={} rounds={}", args.seed, args.rounds);
        println!("{}", metrics.snapshot_text());
    }

    if let Some(path) = args.trace_out {
        let trace = system.trace_jsonl();
        if let Err(e) = std::fs::write(&path, trace) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(2);
        }
    }
}

//! Ablation: multi-block (bulk) vs single-block responses — the
//! Algorithm 1 design choice behind Lemma IV.3.
//!
//! ```text
//! cargo run --release -p icbtc-bench --bin ablation_sync
//! ```
//!
//! "Returning multiple blocks speeds up the syncing process but returning
//! only one block is preferable for security reasons" (§III-B). The
//! harness measures both sides: IC rounds needed to sync a chain in each
//! mode, and how many attacker fork blocks a *single* Byzantine
//! block-maker round can inject in each mode.

use icbtc::adapter::BitcoinAdapter;
use icbtc::btcnet::adversary::SecretForkMiner;
use icbtc::btcnet::network::{BtcNetwork, NetworkConfig};
use icbtc::canister::BitcoinCanisterState;
use icbtc::core::{GetSuccessorsResponse, IntegrationParams};
use icbtc::ic::Meter;
use icbtc::sim::metrics::Table;
use icbtc_bench::report::banner;
use icbtc::bitcoin::Network;
use icbtc::sim::{SimDuration, SimTime};

const NOW: u32 = 2_100_000_000;

/// Rounds of request/response until the canister holds the whole chain.
fn rounds_to_sync(bulk: bool, seed: u64) -> (usize, u64) {
    let mut net = BtcNetwork::new(NetworkConfig::regtest(3), seed);
    net.run_until(SimTime::from_secs(10 * 3600)); // ~60 blocks
    let params = IntegrationParams::for_network(Network::Regtest)
        .with_bulk_sync_height(if bulk { u64::MAX } else { 0 })
        .with_connections(2);
    let mut adapter = BitcoinAdapter::new(params, seed);
    let mut state = BitcoinCanisterState::new(params);
    let target = net.best_height();
    for round in 1..=5000 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(1));
        let request = state.make_request();
        let response = adapter.handle_request(&mut net, &request);
        state.process_response(response, NOW, &mut Meter::new());
        if state.available_tip_height() >= target {
            return (round, target);
        }
    }
    (usize::MAX, target)
}

/// Fork blocks a single malicious payload can push into the canister.
fn fork_blocks_per_malicious_round(bulk: bool) -> usize {
    let params = IntegrationParams::for_network(Network::Regtest)
        .with_bulk_sync_height(if bulk { u64::MAX } else { 0 })
        .with_stability_delta(40);
    let state = BitcoinCanisterState::new(params);
    // The attacker pre-mined a 10-block fork from genesis.
    let honest = icbtc::btcnet::ChainStore::new(Network::Regtest);
    let mut fork = SecretForkMiner::branch_at(&honest, honest.tip_hash()).expect("genesis");
    let fork_blocks = fork.extend(10, 1);

    // A Byzantine block maker crafts the response itself — but the
    // canister enforces the same cap the honest adapter does? No: the cap
    // is an *adapter-side* rule; the canister accepts what consensus
    // finalized. The single-block rule is enforced because honest
    // replicas would not notarize an oversized Bitcoin payload; model
    // that by the payload the maker can get finalized.
    let per_round = if bulk { fork_blocks.len() } else { 1 };
    let mut state = state;
    let mut accepted = 0;
    let response = GetSuccessorsResponse {
        blocks: fork_blocks.into_iter().take(per_round).collect(),
        next: Vec::new(),
    };
    let report = state.process_response(response, NOW, &mut Meter::new());
    accepted += report.blocks_accepted;
    accepted
}

fn main() {
    banner(
        "ablation_sync",
        "§III-B design choice: bulk vs single-block responses (speed vs Lemma IV.3)",
    );
    let mut table = Table::new(vec![
        "mode",
        "rounds to sync ~60 blocks",
        "fork blocks injectable per Byzantine round",
    ]);
    let (bulk_rounds, height) = rounds_to_sync(true, 21);
    let (single_rounds, _) = rounds_to_sync(false, 21);
    table.row(vec![
        "bulk (below hard-coded height)".into(),
        format!("{bulk_rounds} (chain height {height})"),
        fork_blocks_per_malicious_round(true).to_string(),
    ]);
    table.row(vec![
        "single-block (above it)".into(),
        format!("{single_rounds}"),
        fork_blocks_per_malicious_round(false).to_string(),
    ]);
    println!("\n{table}");
    println!(
        "bulk mode syncs in far fewer rounds, but lets one Byzantine block maker\n\
         inject a whole fork at once; with one block per round the attack needs\n\
         c* consecutive Byzantine makers (probability < 3^-c*, Lemma IV.3) —\n\
         hence the production rule: bulk only below the hard-coded height, where\n\
         the chain is immutable history anyway."
    );
}

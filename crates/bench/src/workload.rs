//! The Figure-7 query workload: 1000 addresses with the paper's
//! published UTXO-count skew, loaded into a Bitcoin-canister state with
//! both stable and unstable UTXOs.

use icbtc::bitcoin::pow::median_time_past;
use icbtc::bitcoin::{
    merkle_root, Address, AddressKind, Amount, Block, BlockHeader, Network, OutPoint, Script,
    Transaction, TxIn, TxOut, Txid,
};
use icbtc::canister::{BitcoinCanisterState, UtxoSet};
use icbtc::core::{GetSuccessorsResponse, IntegrationParams};
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc::sim::SimRng;

/// The paper's address-population buckets: (count, min UTXOs, max UTXOs).
/// "517 having fewer than 50 UTXOs, 159 addresses returning sets of
/// 50-199 UTXOs, 113 addresses returning 200-999 UTXOs, and 211
/// addresses having 1000 or more" — the ≥1000 tail is log-spread up to
/// ≈ 10.5k, the size implied by Figure 7's 4.76·10⁸-instruction maximum.
pub const PAPER_BUCKETS: [(usize, usize, usize); 4] =
    [(517, 1, 49), (159, 50, 199), (113, 200, 999), (211, 1000, 10_500)];

/// Draws the 1000 per-address UTXO counts of the paper's workload
/// (optionally scaled down by `scale` for quick runs).
pub fn paper_utxo_counts(rng: &mut SimRng, scale: usize) -> Vec<usize> {
    assert!(scale >= 1, "scale must be at least 1");
    let mut counts = Vec::with_capacity(1000);
    for (how_many, lo, hi) in PAPER_BUCKETS {
        for _ in 0..how_many {
            // Log-uniform within the bucket, matching heavy-tailed reality.
            let lo_f = lo as f64;
            let hi_f = hi as f64;
            let log_sample = lo_f.ln() + rng.unit() * (hi_f.ln() - lo_f.ln());
            let count = (log_sample.exp().round() as usize).clamp(lo, hi);
            counts.push((count / scale).max(1));
        }
    }
    counts
}

/// A loaded Figure-7 workload.
pub struct QueryWorkload {
    /// The canister state holding the UTXOs.
    pub state: BitcoinCanisterState,
    /// Addresses whose UTXOs live in the *stable* set, with their counts.
    pub stable_addresses: Vec<(Address, usize)>,
    /// Addresses whose UTXOs live in *unstable* blocks, with their counts.
    pub unstable_addresses: Vec<(Address, usize)>,
}

fn address(tag: u64, stable: bool) -> Address {
    let mut hash = [0u8; 20];
    hash[..8].copy_from_slice(&tag.to_le_bytes());
    hash[9] = if stable { 1 } else { 2 };
    Address::new(Network::Regtest, AddressKind::P2wpkh(hash))
}

fn source_outpoint(height: u64, index: u64) -> OutPoint {
    let mut txid = [0u8; 32];
    txid[..8].copy_from_slice(&height.to_le_bytes());
    txid[8..16].copy_from_slice(&index.to_le_bytes());
    txid[31] = 0xcc;
    OutPoint::new(Txid(txid), 0)
}

/// Builds the workload: the stable share of each address's UTXOs is
/// loaded through [`BitcoinCanisterState::install_snapshot`], then a run
/// of real (mined, validated) unstable blocks carries the rest.
///
/// `scale` divides every UTXO count (1 = the paper's full workload).
pub fn build_query_workload(seed: u64, scale: usize) -> QueryWorkload {
    let mut rng = SimRng::seed_from(seed);
    let counts = paper_utxo_counts(&mut rng, scale);

    // δ large enough that the unstable suffix never stabilizes under the
    // blocks we feed.
    let params = IntegrationParams::for_network(Network::Regtest).with_stability_delta(40);
    let genesis = Network::Regtest.genesis_block().header;

    // --- Stable part: 900 of the 1000 addresses. ------------------------
    let stable_counts = &counts[..900];
    let mut utxos = UtxoSet::new(Network::Regtest);
    let mut meter = Meter::new();
    let mut breakdown = MeterBreakdown::new();
    utxos.ingest_block(&[], 0, &mut meter, &mut breakdown); // empty genesis

    const STABLE_HEIGHTS: u64 = 120;
    let mut stable_addresses = Vec::with_capacity(stable_counts.len());
    // Assemble per-height transaction batches round-robin over addresses.
    let mut per_height: Vec<Vec<TxOut>> = vec![Vec::new(); STABLE_HEIGHTS as usize];
    for (i, &count) in stable_counts.iter().enumerate() {
        let addr = address(i as u64, true);
        stable_addresses.push((addr, count));
        for k in 0..count {
            let height_slot = (i + k * 7) % STABLE_HEIGHTS as usize;
            per_height[height_slot]
                .push(TxOut::new(Amount::from_sat(600 + k as u64), addr.script_pubkey()));
        }
    }
    for (slot, outputs) in per_height.into_iter().enumerate() {
        let height = slot as u64 + 1;
        let txs: Vec<Transaction> = outputs
            .chunks(1000)
            .enumerate()
            .map(|(i, chunk)| Transaction {
                version: 2,
                inputs: vec![TxIn::new(source_outpoint(height, i as u64))],
                outputs: chunk.to_vec(),
                lock_time: 0,
            })
            .collect();
        utxos.ingest_block(&txs, height, &mut meter, &mut breakdown);
    }

    // Matching stable header chain (linkage + timestamps only; proof of
    // work is required of *new* blocks, not installed history).
    let mut stable_headers = vec![genesis];
    for height in 1..=STABLE_HEIGHTS {
        let prev = *stable_headers.last().expect("non-empty");
        stable_headers.push(BlockHeader {
            version: 2,
            prev_blockhash: prev.block_hash(),
            merkle_root: icbtc::bitcoin::MerkleRoot([height as u8; 32]),
            time: genesis.time + height as u32 * 600,
            bits: genesis.bits,
            nonce: 0,
        });
    }

    let mut state = BitcoinCanisterState::new(params);
    state.install_snapshot(utxos, stable_headers.clone());

    // --- Unstable part: the remaining 100 addresses. --------------------
    let unstable_counts = &counts[900..];
    let mut unstable_addresses = Vec::with_capacity(unstable_counts.len());
    const UNSTABLE_BLOCKS: usize = 10;
    let mut per_block: Vec<Vec<TxOut>> = vec![Vec::new(); UNSTABLE_BLOCKS];
    for (i, &count) in unstable_counts.iter().enumerate() {
        let addr = address(i as u64, false);
        // Unstable blocks are bounded; cap the per-address count so the
        // blocks stay mineable quickly.
        let count = count.min(400);
        unstable_addresses.push((addr, count));
        for k in 0..count {
            per_block[(i + k) % UNSTABLE_BLOCKS]
                .push(TxOut::new(Amount::from_sat(700 + k as u64), addr.script_pubkey()));
        }
    }

    let mut prev = *stable_headers.last().expect("non-empty");
    let mut recent_times: Vec<u32> = stable_headers.iter().map(|h| h.time).collect();
    let mut blocks = Vec::with_capacity(UNSTABLE_BLOCKS);
    for (i, outputs) in per_block.into_iter().enumerate() {
        let coinbase = icbtc::bitcoin::builder::coinbase_transaction(
            state.anchor_height() + 1 + i as u64,
            Amount::from_btc_int(3),
            Script::new_op_return(b"workload"),
            i as u64,
        );
        let mut txdata = vec![coinbase];
        for (j, chunk) in outputs.chunks(1000).enumerate() {
            txdata.push(Transaction {
                version: 2,
                inputs: vec![TxIn::new(source_outpoint(10_000 + i as u64, j as u64))],
                outputs: chunk.to_vec(),
                lock_time: 0,
            });
        }
        let mtp = median_time_past(&recent_times);
        let mut header = BlockHeader {
            version: 2,
            prev_blockhash: prev.block_hash(),
            merkle_root: merkle_root(&txdata.iter().map(|t| t.txid()).collect::<Vec<_>>()),
            time: mtp + 600,
            bits: genesis.bits,
            nonce: 0,
        };
        while !header.meets_pow_target() {
            header.nonce += 1;
        }
        recent_times.push(header.time);
        prev = header;
        blocks.push(Block { header, txdata });
    }
    let now_unix = recent_times.last().unwrap() + 60;
    let report = state.process_response(
        GetSuccessorsResponse { blocks, next: Vec::new() },
        now_unix,
        &mut Meter::new(),
    );
    assert_eq!(report.blocks_accepted, UNSTABLE_BLOCKS, "rejected: {:?}", report.rejected);
    assert!(report.stabilized.is_empty(), "unstable blocks must stay unstable");

    QueryWorkload { state, stable_addresses, unstable_addresses }
}

/// A soak-scale query-plane workload: an arbitrary address population
/// following the paper's per-mille bucket proportions, plus a reserve of
/// pre-mined blocks the driver ingests mid-soak to move the tip.
pub struct SoakWorkload {
    /// The loaded canister state.
    pub state: BitcoinCanisterState,
    /// Every address with its stable UTXO count.
    pub addresses: Vec<(Address, u32)>,
    /// Pre-mined blocks extending the unstable tip, for deterministic
    /// mid-soak ingestion (each one invalidates the query cache).
    pub ingest_blocks: Vec<Block>,
}

/// Stable heights the soak UTXOs are spread over.
const SOAK_HEIGHTS: u64 = 240;
/// Unstable blocks present when the soak starts.
const SOAK_UNSTABLE_BLOCKS: usize = 4;
/// Hot addresses receiving unstable/ingested outputs.
const SOAK_HOT_PAYEES: usize = 128;

/// Draws per-address UTXO counts for a population of `num_addresses`:
/// every window of 1000 addresses carries exactly the paper's bucket mix
/// ([`PAPER_BUCKETS`]), log-uniform within each bucket, divided by
/// `utxo_scale` (so soak-scale populations stay memory-bounded while
/// keeping the skew's shape).
pub fn soak_utxo_counts(rng: &mut SimRng, num_addresses: usize, utxo_scale: usize) -> Vec<u32> {
    assert!(utxo_scale >= 1, "utxo_scale must be at least 1");
    let mut window = Vec::with_capacity(1000);
    for (how_many, lo, hi) in PAPER_BUCKETS {
        for _ in 0..how_many {
            window.push((lo, hi));
        }
    }
    let mut counts = Vec::with_capacity(num_addresses);
    for i in 0..num_addresses {
        let (lo, hi) = window[i % window.len()];
        let lo_f = lo as f64;
        let hi_f = hi as f64;
        let log_sample = lo_f.ln() + rng.unit() * (hi_f.ln() - lo_f.ln());
        let count = (log_sample.exp().round() as usize).clamp(lo, hi);
        counts.push((count / utxo_scale).max(1) as u32);
    }
    counts
}

/// Builds the soak workload: `num_addresses` addresses loaded into the
/// stable UTXO set (skew per [`soak_utxo_counts`]), a short unstable
/// suffix, and `num_ingest` further pre-mined blocks for the driver.
pub fn build_soak_workload(
    seed: u64,
    num_addresses: usize,
    utxo_scale: usize,
    num_ingest: usize,
) -> SoakWorkload {
    let mut rng = SimRng::seed_from(seed);
    let counts = soak_utxo_counts(&mut rng, num_addresses, utxo_scale);

    // δ comfortably above the unstable suffix plus every ingest block, so
    // nothing stabilizes mid-soak.
    let delta = (SOAK_UNSTABLE_BLOCKS + num_ingest + 20) as u64;
    let params = IntegrationParams::for_network(Network::Regtest).with_stability_delta(delta);
    let genesis = Network::Regtest.genesis_block().header;

    // --- Stable population, spread round-robin over SOAK_HEIGHTS. -------
    let mut utxos = UtxoSet::new(Network::Regtest);
    let mut meter = Meter::new();
    let mut breakdown = MeterBreakdown::new();
    utxos.ingest_block(&[], 0, &mut meter, &mut breakdown);

    let mut addresses = Vec::with_capacity(num_addresses);
    let mut per_height: Vec<Vec<TxOut>> = vec![Vec::new(); SOAK_HEIGHTS as usize];
    for (i, &count) in counts.iter().enumerate() {
        let addr = address(i as u64, true);
        addresses.push((addr, count));
        for k in 0..count as usize {
            let height_slot = (i + k * 7) % SOAK_HEIGHTS as usize;
            per_height[height_slot]
                .push(TxOut::new(Amount::from_sat(600 + k as u64), addr.script_pubkey()));
        }
    }
    for (slot, outputs) in per_height.into_iter().enumerate() {
        let height = slot as u64 + 1;
        let txs: Vec<Transaction> = outputs
            .chunks(1000)
            .enumerate()
            .map(|(i, chunk)| Transaction {
                version: 2,
                inputs: vec![TxIn::new(source_outpoint(height, i as u64))],
                outputs: chunk.to_vec(),
                lock_time: 0,
            })
            .collect();
        utxos.ingest_block(&txs, height, &mut meter, &mut breakdown);
    }

    let mut stable_headers = vec![genesis];
    for height in 1..=SOAK_HEIGHTS {
        let prev = *stable_headers.last().expect("non-empty");
        stable_headers.push(BlockHeader {
            version: 2,
            prev_blockhash: prev.block_hash(),
            merkle_root: icbtc::bitcoin::MerkleRoot([height as u8; 32]),
            time: genesis.time + height as u32 * 600,
            bits: genesis.bits,
            nonce: 0,
        });
    }
    let mut state = BitcoinCanisterState::new(params);
    state.install_snapshot(utxos, stable_headers.clone());

    // --- Unstable suffix + ingest reserve: mined PoW blocks paying the
    // hot prefix of the population. -------------------------------------
    let hot = addresses.len().min(SOAK_HOT_PAYEES);
    let mut prev = *stable_headers.last().expect("non-empty");
    let mut recent_times: Vec<u32> = stable_headers.iter().map(|h| h.time).collect();
    let mine = |index: u64, prev: &mut BlockHeader, recent_times: &mut Vec<u32>| -> Block {
        let coinbase = icbtc::bitcoin::builder::coinbase_transaction(
            SOAK_HEIGHTS + 1 + index,
            Amount::from_btc_int(3),
            Script::new_op_return(b"qps-soak"),
            index,
        );
        let outputs: Vec<TxOut> = (0..hot)
            .map(|i| {
                TxOut::new(
                    Amount::from_sat(900 + index),
                    addresses[(i + index as usize * 7) % hot.max(1)].0.script_pubkey(),
                )
            })
            .collect();
        let spend = Transaction {
            version: 2,
            inputs: vec![TxIn::new(source_outpoint(20_000 + index, 0))],
            outputs,
            lock_time: 0,
        };
        let txdata = vec![coinbase, spend];
        let mtp = median_time_past(recent_times);
        let mut header = BlockHeader {
            version: 2,
            prev_blockhash: prev.block_hash(),
            merkle_root: merkle_root(&txdata.iter().map(|t| t.txid()).collect::<Vec<_>>()),
            time: mtp + 600,
            bits: genesis.bits,
            nonce: 0,
        };
        while !header.meets_pow_target() {
            header.nonce += 1;
        }
        recent_times.push(header.time);
        *prev = header;
        Block { header, txdata }
    };

    let unstable: Vec<Block> = (0..SOAK_UNSTABLE_BLOCKS as u64)
        .map(|i| mine(i, &mut prev, &mut recent_times))
        .collect();
    let ingest_blocks: Vec<Block> = (0..num_ingest as u64)
        .map(|i| mine(SOAK_UNSTABLE_BLOCKS as u64 + i, &mut prev, &mut recent_times))
        .collect();

    let now_unix = recent_times.last().expect("non-empty") + 60;
    let report = state.process_response(
        GetSuccessorsResponse { blocks: unstable, next: Vec::new() },
        now_unix,
        &mut Meter::new(),
    );
    assert_eq!(report.blocks_accepted, SOAK_UNSTABLE_BLOCKS, "rejected: {:?}", report.rejected);
    assert!(report.stabilized.is_empty(), "soak suffix must stay unstable");
    assert!(state.is_synced());

    SoakWorkload { state, addresses, ingest_blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_counts_match_the_paper() {
        let mut rng = SimRng::seed_from(3);
        let counts = paper_utxo_counts(&mut rng, 1);
        assert_eq!(counts.len(), 1000);
        let below_50 = counts.iter().filter(|&&c| c < 50).count();
        let in_50_199 = counts.iter().filter(|&&c| (50..200).contains(&c)).count();
        let in_200_999 = counts.iter().filter(|&&c| (200..1000).contains(&c)).count();
        let at_least_1000 = counts.iter().filter(|&&c| c >= 1000).count();
        assert_eq!(below_50, 517);
        assert_eq!(in_50_199, 159);
        assert_eq!(in_200_999, 113);
        assert_eq!(at_least_1000, 211);
    }

    #[test]
    fn workload_state_serves_both_regions() {
        let workload = build_query_workload(1, 20);
        let state = &workload.state;
        assert!(state.is_synced());
        assert_eq!(state.unstable_block_count(), 10);

        // A stable address returns exactly its configured count.
        let (addr, count) = workload.stable_addresses[0];
        let mut meter = Meter::new();
        let response = state.get_utxos(&addr, None, &mut meter).unwrap();
        let total = response.utxos.len(); // first page only
        assert!(total == count.min(icbtc::canister::MAX_UTXOS_PER_PAGE), "stable addr: {total} vs {count}");
        assert!(response.utxos.iter().all(|u| u.height <= state.anchor_height()));

        // An unstable address's UTXOs sit above the anchor.
        let (addr, count) = workload.unstable_addresses[0];
        let response = state.get_utxos(&addr, None, &mut Meter::new()).unwrap();
        assert_eq!(response.utxos.len(), count.min(icbtc::canister::MAX_UTXOS_PER_PAGE));
        assert!(response.utxos.iter().all(|u| u.height > state.anchor_height()));
    }

    #[test]
    fn unstable_fetches_cost_less_per_utxo() {
        // The Figure-7 bifurcation, reproduced at workload scale.
        let workload = build_query_workload(2, 20);
        let per_utxo = |addr: &Address, n: usize| {
            let mut meter = Meter::new();
            let _ = workload.state.get_utxos(addr, None, &mut meter).unwrap();
            meter.instructions() as f64 / n.max(1) as f64
        };
        // Pick comparable counts from both regions.
        let (stable_addr, sn) = workload
            .stable_addresses
            .iter()
            .max_by_key(|(_, n)| *n)
            .cloned()
            .unwrap();
        let (unstable_addr, un) = workload
            .unstable_addresses
            .iter()
            .max_by_key(|(_, n)| *n)
            .cloned()
            .unwrap();
        assert!(
            per_utxo(&stable_addr, sn) > per_utxo(&unstable_addr, un),
            "stable fetches must be costlier per UTXO"
        );
    }
}

//! Synthetic mainnet-shaped transaction streams.
//!
//! Figures 5 and 6 are driven by two years / six months of real mainnet
//! blocks, which are not available here. The generator reproduces their
//! statistical drivers instead (see DESIGN.md §1): per-block transaction,
//! output and input counts around the 2023–2025 mainnet averages, with
//! inputs spending previously generated outputs so that UTXO-set removal
//! costs are real.

use icbtc::bitcoin::{Amount, OutPoint, Script, Transaction, TxIn, TxOut};
use icbtc::sim::SimRng;

/// Shape parameters of the synthetic stream.
#[derive(Debug, Clone)]
pub struct ChainGenConfig {
    /// Mean transactions per block (mainnet 2023–2025 ≈ 2,500).
    pub txs_per_block_mean: f64,
    /// Mean outputs per transaction (≈ 2.2).
    pub outputs_per_tx_mean: f64,
    /// Mean inputs per transaction (≈ 2.0; the *effective* gap to
    /// outputs, after bootstrap blocks with nothing to spend, is the
    /// ≈ +700 UTXOs/block net growth that produced Figure 5's slope).
    pub inputs_per_tx_mean: f64,
    /// Number of distinct synthetic addresses receiving outputs.
    pub address_space: usize,
}

impl Default for ChainGenConfig {
    fn default() -> ChainGenConfig {
        ChainGenConfig {
            txs_per_block_mean: 2500.0,
            outputs_per_tx_mean: 2.2,
            inputs_per_tx_mean: 1.98,
            address_space: 50_000,
        }
    }
}

impl ChainGenConfig {
    /// A scaled-down copy: divide per-block transaction volume by `k`
    /// (all ratios preserved). Used to keep harness runtimes short; the
    /// reports extrapolate back.
    pub fn scaled_down(mut self, k: u64) -> ChainGenConfig {
        self.txs_per_block_mean /= k as f64;
        self
    }
}

/// Generates an endless stream of block-shaped transaction batches whose
/// inputs spend earlier outputs.
#[derive(Debug)]
pub struct ChainGen {
    config: ChainGenConfig,
    rng: SimRng,
    /// Spendable outputs created by earlier blocks (FIFO spend order).
    spendable: Vec<(OutPoint, Amount)>,
    spend_cursor: usize,
    blocks_generated: u64,
}

/// Statistics of one generated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStats {
    /// Transactions in the block (excluding any coinbase the caller adds).
    pub transactions: usize,
    /// Outputs created.
    pub outputs: usize,
    /// Inputs spent.
    pub inputs: usize,
}

impl ChainGen {
    /// Creates a generator.
    pub fn new(config: ChainGenConfig, seed: u64) -> ChainGen {
        ChainGen {
            config,
            rng: SimRng::seed_from(seed),
            spendable: Vec::new(),
            spend_cursor: 0,
            blocks_generated: 0,
        }
    }

    /// Blocks generated so far.
    pub fn blocks_generated(&self) -> u64 {
        self.blocks_generated
    }

    fn sample_count(&mut self, mean: f64) -> usize {
        // Mean ± 30 %, clamped at 1: enough spread for the Figure 6 cloud
        // without modelling full block-size distributions.
        let jitter = 0.7 + 0.6 * self.rng.unit();
        ((mean * jitter).round() as usize).max(1)
    }

    fn script_for(&mut self) -> Script {
        let which = self.rng.index(self.config.address_space);
        let mut hash = [0u8; 20];
        hash[..8].copy_from_slice(&(which as u64).to_le_bytes());
        hash[8] = 0x5a;
        Script::new_p2wpkh(&hash)
    }

    /// Generates the next block's transactions plus its statistics.
    pub fn next_block(&mut self) -> (Vec<Transaction>, BlockStats) {
        let tx_count = self.sample_count(self.config.txs_per_block_mean);
        let mut transactions = Vec::with_capacity(tx_count);
        let mut stats = BlockStats { transactions: tx_count, outputs: 0, inputs: 0 };
        for i in 0..tx_count {
            let want_inputs = self.sample_count(self.config.inputs_per_tx_mean);
            let want_outputs = self.sample_count(self.config.outputs_per_tx_mean);
            let mut inputs = Vec::with_capacity(want_inputs);
            for _ in 0..want_inputs {
                if self.spend_cursor < self.spendable.len() {
                    let (outpoint, _) = self.spendable[self.spend_cursor];
                    self.spend_cursor += 1;
                    inputs.push(TxIn::new(outpoint));
                }
            }
            if inputs.is_empty() {
                // Bootstrap blocks have nothing to spend: synthesize a
                // coinbase-like source so the transaction stays valid in
                // shape (the canister does not validate spends anyway).
                let mut txid = [0u8; 32];
                txid[..8].copy_from_slice(&self.blocks_generated.to_le_bytes());
                txid[8..16].copy_from_slice(&(i as u64).to_le_bytes());
                txid[31] = 0xee;
                inputs.push(TxIn::new(OutPoint::new(icbtc::bitcoin::Txid(txid), 0)));
            }
            stats.inputs += inputs.len();
            let mut outputs = Vec::with_capacity(want_outputs);
            for _ in 0..want_outputs {
                let script = self.script_for();
                outputs.push(TxOut::new(Amount::from_sat(1_000 + self.rng.below(100_000)), script));
            }
            stats.outputs += outputs.len();
            let tx = Transaction { version: 2, inputs, outputs, lock_time: 0 };
            let txid = tx.txid();
            for (vout, output) in tx.outputs.iter().enumerate() {
                self.spendable.push((OutPoint::new(txid, vout as u32), output.value));
            }
            transactions.push(tx);
        }
        // Compact the spendable pool occasionally.
        if self.spend_cursor > 100_000 {
            self.spendable.drain(..self.spend_cursor);
            self.spend_cursor = 0;
        }
        self.blocks_generated += 1;
        (transactions, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_mainnet_like_ratios() {
        let mut generator = ChainGen::new(ChainGenConfig::default().scaled_down(10), 1);
        let mut total = BlockStats { transactions: 0, outputs: 0, inputs: 0 };
        let blocks = 40;
        for _ in 0..blocks {
            let (txs, stats) = generator.next_block();
            assert_eq!(txs.len(), stats.transactions);
            total.transactions += stats.transactions;
            total.outputs += stats.outputs;
            total.inputs += stats.inputs;
        }
        let out_per_tx = total.outputs as f64 / total.transactions as f64;
        assert!((1.8..2.6).contains(&out_per_tx), "outputs/tx = {out_per_tx}");
        // Outputs outnumber inputs: the UTXO set grows (Figure 5's slope).
        assert!(total.outputs > total.inputs);
    }

    #[test]
    fn inputs_spend_real_prior_outputs() {
        let mut generator = ChainGen::new(ChainGenConfig::default().scaled_down(50), 2);
        let (first, _) = generator.next_block();
        let first_txids: std::collections::HashSet<_> =
            first.iter().map(|t| t.txid()).collect();
        let (second, _) = generator.next_block();
        let mut hits = 0;
        for tx in &second {
            for input in &tx.inputs {
                if first_txids.contains(&input.previous_output.txid) {
                    hits += 1;
                }
            }
        }
        assert!(hits > 0, "later blocks must spend earlier outputs");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut g = ChainGen::new(ChainGenConfig::default().scaled_down(50), seed);
            let (txs, _) = g.next_block();
            txs.iter().map(|t| t.txid()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

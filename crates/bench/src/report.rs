//! Paper-vs-measured reporting helpers shared by the harness binaries.

use icbtc::sim::metrics::Table;

/// A paper-vs-measured comparison table in the three-column format used
/// across the harness output and EXPERIMENTS.md.
#[derive(Debug)]
pub struct Comparison {
    table: Table,
}

impl Default for Comparison {
    fn default() -> Self {
        Comparison::new()
    }
}

impl Comparison {
    /// Creates an empty comparison table.
    pub fn new() -> Comparison {
        Comparison { table: Table::new(vec!["metric", "paper", "measured"]) }
    }

    /// Adds one metric row.
    pub fn row(&mut self, metric: &str, paper: impl ToString, measured: impl ToString) -> &mut Self {
        self.table.row(vec![metric.to_string(), paper.to_string(), measured.to_string()]);
        self
    }

    /// Prints the table under a heading.
    pub fn print(&self, heading: &str) {
        println!("\n## {heading}\n");
        print!("{}", self.table);
    }
}

/// Prints the standard harness banner naming the experiment and the
/// paper artifact it regenerates.
pub fn banner(experiment: &str, artifact: &str) {
    println!("==========================================================");
    println!("{experiment}");
    println!("regenerates: {artifact}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders() {
        let mut c = Comparison::new();
        c.row("avg instructions / block", "21.6B", "22.1B");
        c.row("p90 latency", "18 s", "17.2 s");
        // Smoke: print path does not panic.
        c.print("test");
    }
}

//! The core concepts of the Bitcoin ⇄ Internet Computer integration.
//!
//! This crate holds the paper's primary conceptual contribution and the
//! contract between its two architectural components:
//!
//! * [`stability`] — δ-stability (Definition II.1) over block-header
//!   trees, in both its confirmation-based (`d_c`) and difficulty-based
//!   (`d_w`) instantiations. This is what reconciles Bitcoin's
//!   probabilistic finality with the IC's deterministic finalization.
//! * [`protocol`] — the `GetSuccessors` request/response shapes exchanged
//!   between the Bitcoin canister and the Bitcoin adapter (Algorithms 1
//!   and 2 operate on these), plus the production [`IntegrationParams`]
//!   (δ = 144, τ = 2, ℓ = 5, discovery watermarks, 2 MiB / 100-header
//!   response limits).
//!
//! The concrete components live in their own crates: `icbtc-adapter`
//! (§III-B) and `icbtc-canister` (§III-C); the full system wiring lives in
//! the umbrella crate `icbtc`.
//!
//! # Examples
//!
//! ```
//! use icbtc_core::stability::HeaderTree;
//! use icbtc_bitcoin::Network;
//!
//! let genesis = Network::Regtest.genesis_block().header;
//! let tree = HeaderTree::new(genesis);
//! assert_eq!(tree.confirmation_stability(&tree.root()), Some(1));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod protocol;
pub mod stability;

pub use protocol::{
    GetSuccessorsRequest, GetSuccessorsResponse, IntegrationParams, MAX_NEXT_HEADERS,
    MAX_RESPONSE_BLOCK_BYTES,
};
pub use stability::HeaderTree;

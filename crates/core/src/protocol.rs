//! The adapter ⇄ canister protocol (paper §III-B / §III-C).
//!
//! The Bitcoin canister periodically sends the adapter a request carrying
//! its anchor header `β*`, the set `A` of headers for which it already
//! holds blocks, and outbound transactions `T`; the adapter answers with
//! blocks `B` extending the canister's tree plus upcoming headers `N`
//! (Algorithm 1). Both sides must agree on the message shapes and limits,
//! so they live here, in the crate both depend on.

use icbtc_bitcoin::{Block, BlockHash, BlockHeader, Network, Transaction};

/// Soft cap on the total size of blocks in one response (`MAX_SIZE`,
/// 2 MiB in production; a block that alone exceeds it is still returned).
pub const MAX_RESPONSE_BLOCK_BYTES: usize = 2 * 1024 * 1024;

/// Cap on the number of upcoming block headers per response
/// (`MAX_HEADERS`, 100 in production).
pub const MAX_NEXT_HEADERS: usize = 100;

/// The request the Bitcoin canister sends to the Bitcoin adapter.
#[derive(Debug, Clone, PartialEq)]
pub struct GetSuccessorsRequest {
    /// The anchor header `β*`: the newest stable header.
    pub anchor: BlockHeader,
    /// Absolute height of the anchor.
    pub anchor_height: u64,
    /// Hashes of headers above the anchor whose blocks the canister
    /// already has (the set `A`).
    pub processed: Vec<BlockHash>,
    /// Outbound Bitcoin transactions to advertise (the set `T`).
    pub transactions: Vec<Transaction>,
}

/// The response from the Bitcoin adapter (Algorithm 1's `[B, N]`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GetSuccessorsResponse {
    /// Blocks extending the canister's tree (the set `B`), BFS order.
    pub blocks: Vec<Block>,
    /// Headers of upcoming blocks the canister still needs (the set `N`).
    pub next: Vec<BlockHeader>,
}

impl GetSuccessorsResponse {
    /// Returns `true` if the response carries nothing new.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.next.is_empty()
    }
}

/// The production parameters of the integration, per network
/// (§III-B/§III-C and §IV-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrationParams {
    /// The Bitcoin network served.
    pub network: Network,
    /// Difficulty-based stability threshold δ for anchor advancement
    /// (144 on mainnet — about one day of blocks).
    pub stability_delta: u64,
    /// Max height lag τ between known headers and available blocks before
    /// the canister answers requests with errors (2 in production).
    pub tau: u64,
    /// Number of Bitcoin-node connections ℓ per adapter (5 on mainnet).
    pub connections: usize,
    /// Lower address-pool threshold `t_l` for discovery.
    pub addr_low_watermark: usize,
    /// Upper address-pool threshold `t_u` for discovery.
    pub addr_high_watermark: usize,
    /// Height below which the adapter may return many blocks per
    /// response; above it, at most one (the Lemma IV.3 safeguard).
    pub bulk_sync_height: u64,
    /// Transaction-cache expiry in the adapter, seconds (10 minutes).
    pub tx_cache_expiry_secs: u64,
}

impl IntegrationParams {
    /// Parameters for a network, matching the paper's production values.
    /// `bulk_sync_height` is "hardcoded" in production; the simulation
    /// exposes it because several experiments sweep it.
    pub fn for_network(network: Network) -> IntegrationParams {
        match network {
            Network::Mainnet => IntegrationParams {
                network,
                stability_delta: 144,
                tau: 2,
                connections: 5,
                addr_low_watermark: 500,
                addr_high_watermark: 2000,
                bulk_sync_height: 800_000,
                tx_cache_expiry_secs: 600,
            },
            Network::Testnet => IntegrationParams {
                network,
                stability_delta: 144,
                tau: 2,
                connections: 5,
                addr_low_watermark: 100,
                addr_high_watermark: 1000,
                bulk_sync_height: 2_500_000,
                tx_cache_expiry_secs: 600,
            },
            Network::Regtest => IntegrationParams {
                network,
                stability_delta: 6,
                tau: 2,
                connections: 1,
                addr_low_watermark: 1,
                addr_high_watermark: 1,
                bulk_sync_height: 100,
                tx_cache_expiry_secs: 600,
            },
        }
    }

    /// A copy with a different stability δ (ablation sweeps).
    pub fn with_stability_delta(mut self, delta: u64) -> IntegrationParams {
        self.stability_delta = delta;
        self
    }

    /// A copy with a different bulk-sync boundary (ablation sweeps).
    pub fn with_bulk_sync_height(mut self, height: u64) -> IntegrationParams {
        self.bulk_sync_height = height;
        self
    }

    /// A copy with a different connection count ℓ.
    pub fn with_connections(mut self, connections: usize) -> IntegrationParams {
        self.connections = connections;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_parameters_match_paper() {
        let mainnet = IntegrationParams::for_network(Network::Mainnet);
        assert_eq!(mainnet.stability_delta, 144);
        assert_eq!(mainnet.tau, 2);
        assert_eq!(mainnet.connections, 5);
        assert_eq!(mainnet.addr_low_watermark, 500);
        assert_eq!(mainnet.addr_high_watermark, 2000);
        assert_eq!(mainnet.tx_cache_expiry_secs, 600);

        let testnet = IntegrationParams::for_network(Network::Testnet);
        assert_eq!(testnet.addr_low_watermark, 100);
        assert_eq!(testnet.addr_high_watermark, 1000);

        let regtest = IntegrationParams::for_network(Network::Regtest);
        assert_eq!(regtest.addr_low_watermark, 1);
        assert_eq!(regtest.addr_high_watermark, 1);
        assert_eq!(regtest.connections, 1);
    }

    #[test]
    fn builder_style_overrides() {
        let p = IntegrationParams::for_network(Network::Regtest)
            .with_stability_delta(10)
            .with_bulk_sync_height(50)
            .with_connections(7);
        assert_eq!(p.stability_delta, 10);
        assert_eq!(p.bulk_sync_height, 50);
        assert_eq!(p.connections, 7);
    }

    #[test]
    fn response_emptiness() {
        assert!(GetSuccessorsResponse::default().is_empty());
        let response = GetSuccessorsResponse {
            blocks: vec![],
            next: vec![Network::Regtest.genesis_block().header],
        };
        assert!(!response.is_empty());
    }

    #[test]
    fn limits_match_paper() {
        assert_eq!(MAX_RESPONSE_BLOCK_BYTES, 2 * 1024 * 1024);
        assert_eq!(MAX_NEXT_HEADERS, 100);
    }
}

//! δ-stability over block trees (paper §II-B / §II-C, Definition II.1).
//!
//! Bitcoin has no deterministic finality: multiple blocks can exist at the
//! same height and the "current" chain can be reorganized. The paper's
//! central conceptual contribution is a *stability* notion that turns the
//! probabilistic block tree into deterministic decisions:
//!
//! > **Definition II.1 (δ-stability).** Given a depth function
//! > `d: B → ℕ₀`, a block `b ∈ B` is δ-stable if (1) `d(b) ≥ δ` and
//! > (2) `d(b) − d(b′) ≥ δ` for every other block `b′` at the same height.
//!
//! Two depth functions instantiate it: `d_c` (unit cost — *confirmation-
//! based* stability, which generalizes Bitcoin's confirmation count to
//! forks) and `d_w` (per-block hash work — *difficulty-based* stability,
//! which the Bitcoin canister uses to advance its anchor, normalized by
//! the work `w(b*)` of a reference block).

use std::collections::BTreeMap;

use icbtc_bitcoin::{BlockHash, BlockHeader, Work};

/// A node in the header tree.
#[derive(Clone, Copy, Debug)]
struct TreeNode {
    header: BlockHeader,
    height: u64,
}

/// A directed tree of block headers rooted at an anchor/genesis header,
/// with the depth and stability queries of §II-B/§II-C.
///
/// # Examples
///
/// ```
/// use icbtc_core::stability::HeaderTree;
/// use icbtc_bitcoin::Network;
///
/// let genesis = Network::Regtest.genesis_block().header;
/// let tree = HeaderTree::new(genesis);
/// // A lone root is its own tip: depth 1, no competitors.
/// assert_eq!(tree.confirmation_stability(&genesis.block_hash()), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct HeaderTree {
    nodes: BTreeMap<BlockHash, TreeNode>,
    children: BTreeMap<BlockHash, Vec<BlockHash>>,
    by_height: BTreeMap<u64, Vec<BlockHash>>,
    root: BlockHash,
    root_height: u64,
}

impl HeaderTree {
    /// Creates a tree whose root is `root` at height 0.
    pub fn new(root: BlockHeader) -> HeaderTree {
        HeaderTree::with_root_height(root, 0)
    }

    /// Creates a tree whose root sits at an absolute chain height (the
    /// canister's anchor is rarely genesis).
    pub fn with_root_height(root: BlockHeader, height: u64) -> HeaderTree {
        let hash = root.block_hash();
        let mut nodes = BTreeMap::new();
        nodes.insert(hash, TreeNode { header: root, height });
        let mut by_height = BTreeMap::new();
        by_height.insert(height, vec![hash]);
        HeaderTree { nodes, children: BTreeMap::new(), by_height, root: hash, root_height: height }
    }

    /// The root hash.
    pub fn root(&self) -> BlockHash {
        self.root
    }

    /// The root's absolute height.
    pub fn root_height(&self) -> u64 {
        self.root_height
    }

    /// Number of headers in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if only the root is present.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Returns `true` if `hash` is in the tree.
    pub fn contains(&self, hash: &BlockHash) -> bool {
        self.nodes.contains_key(hash)
    }

    /// The header stored under `hash`.
    pub fn header(&self, hash: &BlockHash) -> Option<BlockHeader> {
        self.nodes.get(hash).map(|n| n.header)
    }

    /// Absolute height of `hash`.
    pub fn height(&self, hash: &BlockHash) -> Option<u64> {
        self.nodes.get(hash).map(|n| n.height)
    }

    /// Children of `hash`.
    pub fn children(&self, hash: &BlockHash) -> &[BlockHash] {
        self.children.get(hash).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All headers at an absolute height.
    pub fn at_height(&self, height: u64) -> &[BlockHash] {
        self.by_height.get(&height).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The greatest height present.
    pub fn max_height(&self) -> u64 {
        self.nodes.values().map(|n| n.height).max().unwrap_or(self.root_height)
    }

    /// All header hashes, in no particular order.
    pub fn hashes(&self) -> impl Iterator<Item = &BlockHash> {
        self.nodes.keys()
    }

    /// Inserts a header whose parent is already present. Returns `false`
    /// if it was already present.
    ///
    /// # Errors
    ///
    /// Returns the unknown parent hash if the header does not connect.
    pub fn insert(&mut self, header: BlockHeader) -> Result<bool, BlockHash> {
        let hash = header.block_hash();
        if self.nodes.contains_key(&hash) {
            return Ok(false);
        }
        let parent = header.prev_blockhash;
        let parent_height = self.nodes.get(&parent).map(|n| n.height).ok_or(parent)?;
        let height = parent_height + 1;
        self.nodes.insert(hash, TreeNode { header, height });
        self.children.entry(parent).or_default().push(hash);
        self.by_height.entry(height).or_default().push(hash);
        Ok(true)
    }

    /// Generic depth (maximum cumulative cost from `hash` to any reachable
    /// tip), per the definition in §II-B.
    // icbtc-lint: allow(float) -- scaled-difficulty work fits f64 integers (< 2^53) exactly; anchor advance compares integer Work via depth_work, not this path
    fn depth_with<C: Fn(&BlockHeader) -> f64>(&self, hash: &BlockHash, cost: &C) -> Option<f64> {
        let node = self.nodes.get(hash)?;
        let own = cost(&node.header);
        let children = self.children(hash);
        if children.is_empty() {
            return Some(own);
        }
        let best_child = children
            .iter()
            .filter_map(|c| self.depth_with(c, cost))
            .fold(f64::NEG_INFINITY, f64::max); // icbtc-lint: allow(float) -- max-fold over exact integer-valued depths
        Some(own + best_child)
    }

    /// `d_c(b)`: depth counting each block once — the basis of
    /// confirmation-based stability. A tip has `d_c = 1`.
    pub fn depth_count(&self, hash: &BlockHash) -> Option<u64> {
        self.depth_with(hash, &|_| 1.0).map(|d| d as u64) // icbtc-lint: allow(float) -- unit cost: every partial sum is an exact small integer
    }

    /// `d_w(b)`: depth accumulating hash work — the basis of
    /// difficulty-based stability.
    pub fn depth_work(&self, hash: &BlockHash) -> Option<Work> {
        // Work values exceed f64 precision for real difficulty; sum as
        // Work along the recursion instead.
        let node = self.nodes.get(hash)?;
        let own = node.header.work();
        let children = self.children(hash);
        if children.is_empty() {
            return Some(own);
        }
        let best = children
            .iter()
            .filter_map(|c| self.depth_work(c))
            .max()
            .unwrap_or(Work::ZERO);
        Some(own + best)
    }

    /// Confirmation-based stability of a block: the largest δ for which
    /// Definition II.1 holds under `d_c`, which may be negative for blocks
    /// on losing forks (as in the paper's Figure 3).
    pub fn confirmation_stability(&self, hash: &BlockHash) -> Option<i64> {
        let node = self.nodes.get(hash)?;
        let own_depth = self.depth_count(hash)? as i64;
        let mut stability = own_depth; // condition (1): d(b) ≥ δ
        for other in self.at_height(node.height) {
            if other == hash {
                continue;
            }
            let other_depth = self.depth_count(other)? as i64;
            stability = stability.min(own_depth - other_depth); // condition (2)
        }
        Some(stability)
    }

    /// Whether `hash` is confirmation-based δ-stable.
    pub fn is_confirmation_stable(&self, hash: &BlockHash, delta: u64) -> bool {
        assert!(delta > 0, "delta-stability requires delta > 0");
        self.confirmation_stability(hash)
            .map(|s| s >= delta as i64)
            .unwrap_or(false)
    }

    /// Difficulty-based stability of a block *relative to the work of a
    /// reference block* `reference_work` — the quantity
    /// `d_w(b) / w(b*)` that §II-C compares against δ. Returns the
    /// normalized margin `min(d_w(b), min_{b′}(d_w(b) − d_w(b′)))/w(b*)`.
    ///
    /// # Panics
    ///
    /// Panics if `reference_work` is zero.
    // icbtc-lint: allow(float) -- reporting-grade ratio per the paper's d_w/w(b*); see is_difficulty_stable for the guarded use
    pub fn difficulty_stability(&self, hash: &BlockHash, reference_work: Work) -> Option<f64> {
        assert!(reference_work > Work::ZERO, "reference work must be positive");
        let node = self.nodes.get(hash)?;
        let own = self.depth_work(hash)?.as_f64();
        let mut margin = own;
        for other in self.at_height(node.height) {
            if other == hash {
                continue;
            }
            let other_depth = self.depth_work(other)?.as_f64();
            margin = margin.min(own - other_depth);
        }
        Some(margin / reference_work.as_f64())
    }

    /// Whether `hash` is difficulty-based δ-stable with respect to a
    /// reference block of work `reference_work`.
    pub fn is_difficulty_stable(
        &self,
        hash: &BlockHash,
        delta: u64,
        reference_work: Work,
    ) -> bool {
        assert!(delta > 0, "delta-stability requires delta > 0");
        self.difficulty_stability(hash, reference_work)
            .map(|s| s >= delta as f64) // icbtc-lint: allow(float) -- margins and delta are exact in f64 at simulation difficulty scale
            .unwrap_or(false)
    }

    /// The current blockchain per §II-B: the path from the root to a tip
    /// maximizing cumulative work, root first.
    pub fn best_chain(&self) -> Vec<BlockHash> {
        let mut chain = vec![self.root];
        let mut cursor = self.root;
        loop {
            let next = self
                .children(&cursor)
                .iter()
                .max_by_key(|c| self.depth_work(c).unwrap_or(Work::ZERO));
            match next {
                Some(child) => {
                    chain.push(*child);
                    cursor = *child;
                }
                None => return chain,
            }
        }
    }

    /// Prunes every branch that does not pass through `new_root`, making
    /// it the tree's root — the canister's anchor advance. Returns the
    /// removed hashes.
    ///
    /// # Panics
    ///
    /// Panics if `new_root` is not in the tree.
    pub fn reroot(&mut self, new_root: BlockHash) -> Vec<BlockHash> {
        assert!(self.nodes.contains_key(&new_root), "new root must exist");
        // Collect the keep-set: new_root and its descendants.
        let mut keep = vec![new_root];
        let mut stack = vec![new_root];
        while let Some(cur) = stack.pop() {
            for child in self.children(&cur) {
                keep.push(*child);
                stack.push(*child);
            }
        }
        let keep_set: std::collections::BTreeSet<BlockHash> = keep.into_iter().collect();
        let removed: Vec<BlockHash> =
            self.nodes.keys().filter(|h| !keep_set.contains(h)).copied().collect();
        for hash in &removed {
            let node = self.nodes.remove(hash).expect("listed for removal"); // icbtc-lint: allow(no-panic) -- invariant: `removed` was collected from self.nodes.keys() two lines up and nothing mutates nodes in between
            self.children.remove(hash);
            if let Some(level) = self.by_height.get_mut(&node.height) {
                level.retain(|h| h != hash);
            }
        }
        for children in self.children.values_mut() {
            children.retain(|c| keep_set.contains(c));
        }
        self.root = new_root;
        self.root_height = self.nodes[&new_root].height;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::pow::CompactTarget;
    use icbtc_bitcoin::{MerkleRoot, Network};

    /// Builds a synthetic child header (unchecked PoW — the tree itself
    /// does not validate, as validation lives in the adapter/canister).
    fn child_of(parent: &BlockHeader, salt: u32) -> BlockHeader {
        BlockHeader {
            version: 2,
            prev_blockhash: parent.block_hash(),
            merkle_root: MerkleRoot([salt as u8; 32]),
            time: parent.time + 600,
            bits: parent.bits,
            nonce: salt,
        }
    }

    fn root() -> BlockHeader {
        Network::Regtest.genesis_block().header
    }

    /// Builds the paper's Figure 3 shape: a main chain with two forks.
    ///
    /// ```text
    /// g - a1 - a2 - a3 - a4 - a5
    ///       \- b2 - b3
    ///             \- c4        (c4 branches from b3's parent? no: from b3)
    /// ```
    fn figure3() -> (HeaderTree, Vec<BlockHash>, Vec<BlockHash>) {
        let g = root();
        let mut tree = HeaderTree::new(g);
        let mut main = Vec::new();
        let mut parent = g;
        for i in 0..5 {
            let h = child_of(&parent, 100 + i);
            tree.insert(h).unwrap();
            main.push(h.block_hash());
            parent = h;
        }
        // Fork from a1: two blocks.
        let a1 = tree.header(&main[0]).unwrap();
        let b2 = child_of(&a1, 200);
        let b3 = child_of(&b2, 201);
        tree.insert(b2).unwrap();
        tree.insert(b3).unwrap();
        (tree, main, vec![b2.block_hash(), b3.block_hash()])
    }

    #[test]
    fn depth_count_of_linear_chain() {
        let g = root();
        let mut tree = HeaderTree::new(g);
        let mut parent = g;
        let mut hashes = vec![g.block_hash()];
        for i in 0..4 {
            let h = child_of(&parent, i);
            tree.insert(h).unwrap();
            hashes.push(h.block_hash());
            parent = h;
        }
        // Depths: 5, 4, 3, 2, 1 from root to tip.
        for (i, hash) in hashes.iter().enumerate() {
            assert_eq!(tree.depth_count(hash), Some(5 - i as u64));
        }
        // Stability equals depth without competitors.
        for (i, hash) in hashes.iter().enumerate() {
            assert_eq!(tree.confirmation_stability(hash), Some(5 - i as i64));
        }
    }

    #[test]
    fn figure3_stability_values() {
        let (tree, main, fork) = figure3();
        // Main chain blocks compete with the fork at heights 2 and 3.
        // a1 has no competitor: stability = depth = 5.
        assert_eq!(tree.confirmation_stability(&main[0]), Some(5));
        // a2: depth 4, fork b2 depth 2 ⇒ min(4, 4-2) = 2.
        assert_eq!(tree.confirmation_stability(&main[1]), Some(2));
        // a3: depth 3, fork b3 depth 1 ⇒ min(3, 3-1) = 2.
        assert_eq!(tree.confirmation_stability(&main[2]), Some(2));
        // a4, a5 unopposed: stability = depth.
        assert_eq!(tree.confirmation_stability(&main[3]), Some(2));
        assert_eq!(tree.confirmation_stability(&main[4]), Some(1));
        // Fork blocks have negative stability (they lose).
        assert_eq!(tree.confirmation_stability(&fork[0]), Some(2 - 4));
        assert_eq!(tree.confirmation_stability(&fork[1]), Some(1 - 3));
    }

    #[test]
    fn stability_stagnates_while_depth_grows() {
        // The paper notes stability may stagnate even as depth increases:
        // grow both forks in lockstep and watch the margin stay fixed.
        let g = root();
        let mut tree = HeaderTree::new(g);
        let a1 = child_of(&g, 1);
        let b1 = child_of(&g, 2);
        tree.insert(a1).unwrap();
        tree.insert(b1).unwrap();
        let mut a_parent = a1;
        let mut b_parent = b1;
        let mut last_stability = tree.confirmation_stability(&a1.block_hash()).unwrap();
        for i in 0..5 {
            let a_next = child_of(&a_parent, 10 + i);
            let b_next = child_of(&b_parent, 20 + i);
            tree.insert(a_next).unwrap();
            tree.insert(b_next).unwrap();
            a_parent = a_next;
            b_parent = b_next;
            let stability = tree.confirmation_stability(&a1.block_hash()).unwrap();
            assert_eq!(stability, last_stability, "equal-rate forks freeze stability");
            last_stability = stability;
            // Depth keeps growing though.
            assert_eq!(tree.depth_count(&a1.block_hash()), Some(i as u64 + 2));
        }
        assert_eq!(last_stability, 0, "competing equal forks pin stability at 0");
    }

    #[test]
    fn only_one_delta_stable_block_per_height() {
        let (tree, main, fork) = figure3();
        // At height 2 (a2 vs b2) only a2 can be δ-stable for δ=1..3.
        for delta in 1..=3u64 {
            let stable_a = tree.is_confirmation_stable(&main[1], delta);
            let stable_b = tree.is_confirmation_stable(&fork[0], delta);
            assert!(!(stable_a && stable_b), "two stable blocks at one height");
        }
        assert!(tree.is_confirmation_stable(&main[1], 2));
        assert!(!tree.is_confirmation_stable(&main[1], 3));
    }

    #[test]
    fn delta_monotonicity() {
        // δ-stable implies δ′-stable for δ′ ≤ δ.
        let (tree, main, _) = figure3();
        for hash in &main {
            for delta in 1..=6u64 {
                if tree.is_confirmation_stable(hash, delta) {
                    for smaller in 1..delta {
                        assert!(tree.is_confirmation_stable(hash, smaller));
                    }
                }
            }
        }
    }

    #[test]
    fn difficulty_stability_equal_bits_matches_confirmations() {
        // With uniform difficulty, d_w/w(b*) numerically equals d_c.
        let (tree, main, _) = figure3();
        let reference = tree.header(&main[0]).unwrap().work();
        for hash in &main {
            let conf = tree.confirmation_stability(hash).unwrap() as f64;
            let diff = tree.difficulty_stability(hash, reference).unwrap();
            assert!((conf - diff).abs() < 1e-9, "{conf} vs {diff}");
        }
    }

    #[test]
    fn difficulty_stability_weights_by_work() {
        // A single high-work block outweighs several low-work blocks.
        let g = root();
        let mut tree = HeaderTree::new(g);
        let mut weak = child_of(&g, 1);
        weak.bits = CompactTarget::from_consensus(0x207fffff); // minimal work
        let mut strong = child_of(&g, 2);
        strong.bits = CompactTarget::from_consensus(0x1f00ffff); // ~256x more work
        tree.insert(weak).unwrap();
        tree.insert(strong).unwrap();
        // Extend the weak branch by 3 blocks; the strong branch stays 1.
        let mut parent = weak;
        for i in 0..3 {
            let mut next = child_of(&parent, 10 + i);
            next.bits = CompactTarget::from_consensus(0x207fffff);
            tree.insert(next).unwrap();
            parent = next;
        }
        // Confirmation count prefers the longer weak branch...
        assert!(
            tree.depth_count(&weak.block_hash()).unwrap()
                > tree.depth_count(&strong.block_hash()).unwrap()
        );
        // ...but work-weighted depth prefers the strong block.
        assert!(
            tree.depth_work(&strong.block_hash()).unwrap()
                > tree.depth_work(&weak.block_hash()).unwrap()
        );
        let best = tree.best_chain();
        assert_eq!(best[1], strong.block_hash());
    }

    #[test]
    fn best_chain_follows_work() {
        let (tree, main, _) = figure3();
        let best = tree.best_chain();
        assert_eq!(best.len(), 6);
        assert_eq!(best[5], main[4]);
    }

    #[test]
    fn reroot_prunes_losing_forks() {
        let (mut tree, main, fork) = figure3();
        assert_eq!(tree.len(), 8);
        let removed = tree.reroot(main[1]);
        assert_eq!(tree.root(), main[1]);
        assert_eq!(tree.root_height(), 2);
        // Removed: genesis, a1, b2, b3.
        assert_eq!(removed.len(), 4);
        assert!(!tree.contains(&fork[0]));
        assert!(!tree.contains(&fork[1]));
        assert!(tree.contains(&main[4]));
        assert_eq!(tree.len(), 4);
        // Stability queries still work on the re-rooted tree.
        assert_eq!(tree.confirmation_stability(&main[1]), Some(4));
    }

    #[test]
    fn insert_rejects_orphans_and_duplicates() {
        let g = root();
        let mut tree = HeaderTree::new(g);
        let child = child_of(&g, 1);
        let orphan = child_of(&child, 2);
        assert_eq!(tree.insert(orphan), Err(child.block_hash()));
        assert_eq!(tree.insert(child), Ok(true));
        assert_eq!(tree.insert(child), Ok(false));
        assert_eq!(tree.insert(orphan), Ok(true));
    }

    #[test]
    fn with_root_height_offsets_heights() {
        let g = root();
        let tree = HeaderTree::with_root_height(g, 1000);
        assert_eq!(tree.root_height(), 1000);
        assert_eq!(tree.height(&g.block_hash()), Some(1000));
        assert_eq!(tree.at_height(1000).len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_delta_panics() {
        let tree = HeaderTree::new(root());
        let _ = tree.is_confirmation_stable(&tree.root(), 0);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Builds a random tree by attaching each new header to a random
        /// existing node.
        fn random_tree(choices: &[u8]) -> (HeaderTree, Vec<BlockHash>) {
            let g = root();
            let mut tree = HeaderTree::new(g);
            let mut hashes = vec![g.block_hash()];
            for (i, &choice) in choices.iter().enumerate() {
                let parent_hash = hashes[choice as usize % hashes.len()];
                let parent = tree.header(&parent_hash).unwrap();
                let header = child_of(&parent, 1000 + i as u32);
                tree.insert(header).unwrap();
                hashes.push(header.block_hash());
            }
            (tree, hashes)
        }

        /// At most one block per height is δ-stable, for every δ ≥ 1.
        #[test]
        fn unique_stable_block_per_height() {
            testkit::check(0x57_0001, testkit::DEFAULT_CASES, |rng| {
                let choices = testkit::bytes(rng, 1..40);
                let (tree, _) = random_tree(&choices);
                for height in 0..=tree.max_height() {
                    for delta in 1..4u64 {
                        let stable: Vec<_> = tree
                            .at_height(height)
                            .iter()
                            .filter(|h| tree.is_confirmation_stable(h, delta))
                            .collect();
                        assert!(stable.len() <= 1);
                    }
                }
            });
        }

        /// Stability never exceeds depth, and equals depth when the
        /// block has no same-height competitor.
        #[test]
        fn stability_bounded_by_depth() {
            testkit::check(0x57_0002, testkit::DEFAULT_CASES, |rng| {
                let choices = testkit::bytes(rng, 1..40);
                let (tree, hashes) = random_tree(&choices);
                for hash in &hashes {
                    let depth = tree.depth_count(hash).unwrap() as i64;
                    let stability = tree.confirmation_stability(hash).unwrap();
                    assert!(stability <= depth);
                    let height = tree.height(hash).unwrap();
                    if tree.at_height(height).len() == 1 {
                        assert_eq!(stability, depth);
                    }
                }
            });
        }

        /// The best chain is connected, starts at the root, and ends
        /// at a tip.
        #[test]
        fn best_chain_well_formed() {
            testkit::check(0x57_0003, testkit::DEFAULT_CASES, |rng| {
                let choices = testkit::bytes(rng, 1..40);
                let (tree, _) = random_tree(&choices);
                let chain = tree.best_chain();
                assert_eq!(chain[0], tree.root());
                for pair in chain.windows(2) {
                    let child_header = tree.header(&pair[1]).unwrap();
                    assert_eq!(child_header.prev_blockhash, pair[0]);
                }
                assert!(tree.children(chain.last().unwrap()).is_empty());
            });
        }
    }
}

//! The smart-contract toolkit: canisters holding and moving bitcoin.
//!
//! The paper's motivating capability (§I): canisters hold bitcoin
//! *natively* — each contract controls Bitcoin addresses derived from the
//! subnet's threshold key, reads its balance through the Bitcoin
//! canister, and spends by having the replicas threshold-sign real
//! Bitcoin transactions that the adapters forward to the network.
//!
//! [`Wallet`] is the building block the example applications (escrow,
//! payroll) compose.

use icbtc_bitcoin::builder::{BuildError, TransactionBuilder};
use icbtc_bitcoin::encode::Encodable;
use icbtc_bitcoin::{Address, AddressKind, Amount, Transaction, Txid};
use icbtc_canister::{ApiError, CanisterCall, CanisterReply, Utxo};
use icbtc_tecdsa::protocol::DerivationPath;

use crate::system::System;

/// Error from wallet operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalletError {
    /// The Bitcoin canister rejected a call.
    Api(ApiError),
    /// Not enough confirmed funds for the requested transfer.
    InsufficientFunds {
        /// What the wallet holds.
        available: Amount,
        /// What the transfer needs (amount + fee).
        required: Amount,
    },
    /// Transaction construction failed.
    Build(BuildError),
}

impl std::fmt::Display for WalletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalletError::Api(e) => write!(f, "bitcoin canister error: {e}"),
            WalletError::InsufficientFunds { available, required } => {
                write!(f, "insufficient funds: have {available}, need {required}")
            }
            WalletError::Build(e) => write!(f, "transaction build error: {e}"),
        }
    }
}

impl std::error::Error for WalletError {}

impl From<ApiError> for WalletError {
    fn from(e: ApiError) -> WalletError {
        WalletError::Api(e)
    }
}

impl From<BuildError> for WalletError {
    fn from(e: BuildError) -> WalletError {
        WalletError::Build(e)
    }
}

/// A canister-controlled Bitcoin wallet: one derivation path under the
/// subnet's threshold key, spending P2WPKH outputs.
///
/// # Examples
///
/// ```
/// use icbtc::contracts::Wallet;
/// use icbtc::system::{System, SystemConfig};
///
/// let system = System::new(SystemConfig::regtest(5));
/// let wallet = Wallet::new("my-dapp");
/// let address = wallet.address(&system);
/// assert!(address.to_string().starts_with("bcrt1q"));
/// ```
#[derive(Debug, Clone)]
pub struct Wallet {
    path: DerivationPath,
}

impl Wallet {
    /// Creates a wallet for a contract identified by `label`.
    pub fn new(label: &str) -> Wallet {
        Wallet { path: DerivationPath::new([label.as_bytes().to_vec()]) }
    }

    /// Creates a wallet at an explicit derivation path.
    pub fn at_path(path: DerivationPath) -> Wallet {
        Wallet { path }
    }

    /// The wallet's derivation path.
    pub fn path(&self) -> &DerivationPath {
        &self.path
    }

    /// The wallet's P2WPKH address on the system's network.
    pub fn address(&self, system: &System) -> Address {
        let pubkey = system.threshold_key().derived_public_key(&self.path);
        let network = system.canister().state().params().network;
        Address::new(network, AddressKind::P2wpkh(pubkey.pubkey_hash()))
    }

    /// The wallet's confirmed balance via a canister query.
    ///
    /// # Errors
    ///
    /// Propagates canister API errors (e.g. not synced).
    pub fn balance(
        &self,
        system: &mut System,
        min_confirmations: u32,
    ) -> Result<Amount, WalletError> {
        let address = self.address(system);
        let outcome = system.query(CanisterCall::GetBalance { address, min_confirmations });
        match outcome.outcome.reply? {
            CanisterReply::Balance(b) => Ok(b.balance),
            _ => unreachable!("balance call returns balance"),
        }
    }

    /// The wallet's UTXOs via a canister query (first page).
    ///
    /// # Errors
    ///
    /// Propagates canister API errors.
    pub fn utxos(&self, system: &mut System) -> Result<Vec<Utxo>, WalletError> {
        let address = self.address(system);
        let outcome = system.query(CanisterCall::GetUtxos { address, filter: None });
        match outcome.outcome.reply? {
            CanisterReply::Utxos(r) => Ok(r.utxos),
            _ => unreachable!("utxos call returns utxos"),
        }
    }

    /// Builds, threshold-signs, and submits a transfer of `amount` to
    /// `to`, paying `fee`; change returns to the wallet. Returns the
    /// txid accepted by the Bitcoin canister.
    ///
    /// The spend selects UTXOs greedily (largest first), computes each
    /// input's BIP-143 sighash, and gathers a threshold-ECDSA signature
    /// per input; the finished witnesses are `[DER signature ‖ SIGHASH_ALL,
    /// compressed pubkey]` — exactly what Bitcoin validates for P2WPKH.
    ///
    /// # Errors
    ///
    /// [`WalletError::InsufficientFunds`] when the confirmed UTXOs cannot
    /// cover `amount + fee`, and canister/build errors otherwise.
    pub fn transfer(
        &self,
        system: &mut System,
        to: &Address,
        amount: Amount,
        fee: Amount,
    ) -> Result<Txid, WalletError> {
        let tx = self.build_signed_transfer(system, to, amount, fee)?;
        let outcome =
            system.replicated(CanisterCall::SendTransaction { transaction: tx.encode_to_vec() });
        match outcome.outcome.reply? {
            CanisterReply::TransactionSent(txid) => Ok(txid),
            _ => unreachable!("send_transaction returns txid"),
        }
    }

    /// Pays several recipients in a single threshold-signed transaction —
    /// the batch form payroll-style contracts use. Returns the accepted
    /// txid.
    ///
    /// # Errors
    ///
    /// As for [`Wallet::transfer`].
    pub fn pay_many(
        &self,
        system: &mut System,
        payments: &[(Address, Amount)],
        fee: Amount,
    ) -> Result<Txid, WalletError> {
        let tx = self.build_signed_payment(system, payments, fee)?;
        let outcome =
            system.replicated(CanisterCall::SendTransaction { transaction: tx.encode_to_vec() });
        match outcome.outcome.reply? {
            CanisterReply::TransactionSent(txid) => Ok(txid),
            _ => unreachable!("send_transaction returns txid"),
        }
    }

    /// Like [`Wallet::transfer`] but returns the signed transaction
    /// without submitting it (used by contracts that hold pre-signed
    /// transactions, e.g. escrow releases).
    ///
    /// # Errors
    ///
    /// As for [`Wallet::transfer`].
    pub fn build_signed_transfer(
        &self,
        system: &mut System,
        to: &Address,
        amount: Amount,
        fee: Amount,
    ) -> Result<Transaction, WalletError> {
        self.build_signed_payment(system, &[(*to, amount)], fee)
    }

    /// Builds and threshold-signs a multi-output payment without
    /// submitting it.
    ///
    /// # Errors
    ///
    /// As for [`Wallet::transfer`].
    pub fn build_signed_payment(
        &self,
        system: &mut System,
        payments: &[(Address, Amount)],
        fee: Amount,
    ) -> Result<Transaction, WalletError> {
        let own_address = self.address(system);
        let mut utxos = self.utxos(system)?;
        utxos.sort_by_key(|u| std::cmp::Reverse(u.value));

        let amount: Amount = payments.iter().map(|(_, v)| *v).sum();
        let required = amount
            .checked_add(fee)
            .ok_or(WalletError::InsufficientFunds { available: Amount::ZERO, required: Amount::MAX_MONEY })?;
        let mut selected = Vec::new();
        let mut total = Amount::ZERO;
        for utxo in utxos {
            total = total.checked_add(utxo.value).expect("utxo sum below max money");
            selected.push(utxo);
            if total >= required {
                break;
            }
        }
        if total < required {
            return Err(WalletError::InsufficientFunds { available: total, required });
        }

        let mut builder = TransactionBuilder::new();
        for utxo in &selected {
            builder.add_input(utxo.outpoint, utxo.value, own_address.script_pubkey());
        }
        for (to, value) in payments {
            builder.add_output(to.script_pubkey(), *value);
        }
        builder.change_script(own_address.script_pubkey());
        builder.fee(fee);
        let mut unsigned = builder.build()?;

        let pubkey = system.threshold_key().derived_public_key(&self.path);
        for index in 0..selected.len() {
            let sighash = unsigned.sighash(index);
            let signature = system.sign_with_ecdsa(&self.path, sighash);
            debug_assert!(pubkey.verify(&sighash, &signature));
            unsigned.set_witness(
                index,
                vec![signature.to_der_with_sighash_all(), pubkey.to_compressed().to_vec()],
            );
        }
        Ok(unsigned.into_transaction())
    }
}

/// A taproot wallet: like [`Wallet`], but holding funds in P2TR outputs
/// spent by key path with threshold **Schnorr** signatures (BIP-340/341)
/// — the second signature scheme the IC exposes to canisters (§I).
///
/// # Examples
///
/// ```
/// use icbtc::contracts::TaprootWallet;
/// use icbtc::system::{System, SystemConfig};
///
/// let system = System::new(SystemConfig::regtest(5));
/// let wallet = TaprootWallet::new("taproot-dapp");
/// assert!(wallet.address(&system).to_string().starts_with("bcrt1p"));
/// ```
#[derive(Debug, Clone)]
pub struct TaprootWallet {
    path: DerivationPath,
}

impl TaprootWallet {
    /// Creates a taproot wallet for a contract identified by `label`.
    pub fn new(label: &str) -> TaprootWallet {
        TaprootWallet {
            path: DerivationPath::new([b"taproot".to_vec(), label.as_bytes().to_vec()]),
        }
    }

    /// The wallet's derivation path.
    pub fn path(&self) -> &DerivationPath {
        &self.path
    }

    /// The x-only output key (BIP-340 even-y normalized).
    pub fn output_key(&self, system: &System) -> [u8; 32] {
        let pubkey = system.threshold_key().derived_public_key(&self.path);
        pubkey.0.normalize_even_y().0.to_x_only()
    }

    /// The wallet's P2TR address.
    pub fn address(&self, system: &System) -> Address {
        let network = system.canister().state().params().network;
        Address::new(network, AddressKind::P2tr(self.output_key(system)))
    }

    /// The wallet's balance via a canister query.
    ///
    /// # Errors
    ///
    /// Propagates canister API errors.
    pub fn balance(
        &self,
        system: &mut System,
        min_confirmations: u32,
    ) -> Result<Amount, WalletError> {
        let address = self.address(system);
        let outcome = system.query(CanisterCall::GetBalance { address, min_confirmations });
        match outcome.outcome.reply? {
            CanisterReply::Balance(b) => Ok(b.balance),
            _ => unreachable!("balance call returns balance"),
        }
    }

    /// Builds, threshold-Schnorr-signs, and submits a key-path transfer
    /// of `amount` to `to`, paying `fee`; change returns to the wallet.
    ///
    /// The witness of each input is a single 64-byte BIP-340 signature
    /// over the BIP-341 key-spend sighash — exactly what taproot
    /// validates.
    ///
    /// # Errors
    ///
    /// As for [`Wallet::transfer`].
    pub fn transfer(
        &self,
        system: &mut System,
        to: &Address,
        amount: Amount,
        fee: Amount,
    ) -> Result<Txid, WalletError> {
        let own_address = self.address(system);
        let outcome = system.query(CanisterCall::GetUtxos { address: own_address, filter: None });
        let mut utxos = match outcome.outcome.reply? {
            CanisterReply::Utxos(r) => r.utxos,
            _ => unreachable!("utxos call returns utxos"),
        };
        utxos.sort_by_key(|u| std::cmp::Reverse(u.value));

        let required = amount
            .checked_add(fee)
            .ok_or(WalletError::InsufficientFunds { available: Amount::ZERO, required: Amount::MAX_MONEY })?;
        let mut selected = Vec::new();
        let mut total = Amount::ZERO;
        for utxo in utxos {
            total = total.checked_add(utxo.value).expect("utxo sum below max money");
            selected.push(utxo);
            if total >= required {
                break;
            }
        }
        if total < required {
            return Err(WalletError::InsufficientFunds { available: total, required });
        }

        let mut builder = TransactionBuilder::new();
        for utxo in &selected {
            builder.add_input(utxo.outpoint, utxo.value, own_address.script_pubkey());
        }
        builder.add_output(to.script_pubkey(), amount);
        builder.change_script(own_address.script_pubkey());
        builder.fee(fee);
        let mut unsigned = builder.build()?;

        for index in 0..selected.len() {
            let sighash = unsigned.sighash(index); // BIP-341 key path
            let (signature, pubkey_x) = system.sign_with_schnorr(&self.path, sighash);
            debug_assert!(icbtc_tecdsa::schnorr::verify(&pubkey_x, &sighash, &signature));
            unsigned.set_witness(index, vec![signature.to_bytes().to_vec()]);
        }
        let tx = unsigned.into_transaction();
        let outcome =
            system.replicated(CanisterCall::SendTransaction { transaction: tx.encode_to_vec() });
        match outcome.outcome.reply? {
            CanisterReply::TransactionSent(txid) => Ok(txid),
            _ => unreachable!("send_transaction returns txid"),
        }
    }
}

/// Verifies that every input of `tx` carries a valid BIP-341 key-path
/// Schnorr signature for the given spent outputs — the taproot analogue
/// of [`verify_p2wpkh_spend`].
pub fn verify_p2tr_key_spend(
    tx: &Transaction,
    spent: &[(Amount, icbtc_bitcoin::Script)],
) -> bool {
    use icbtc_bitcoin::script::{taproot_key_spend_sighash, ScriptKind};
    use icbtc_tecdsa::schnorr::{verify, SchnorrSignature};

    if tx.inputs.len() != spent.len() {
        return false;
    }
    for (index, (input, (_, script))) in tx.inputs.iter().zip(spent).enumerate() {
        let ScriptKind::P2tr(output_key) = script.classify() else {
            return false;
        };
        let [sig_bytes] = input.witness.as_slice() else {
            return false;
        };
        let Ok(sig_array) = <[u8; 64]>::try_from(sig_bytes.as_slice()) else {
            return false;
        };
        let Some(signature) = SchnorrSignature::from_bytes(&sig_array) else {
            return false;
        };
        let digest = taproot_key_spend_sighash(tx, index, spent);
        if !verify(&output_key, &digest, &signature) {
            return false;
        }
    }
    true
}

/// Verifies that every input of `tx` carries a valid P2WPKH threshold
/// signature for the given spent outputs — what a Bitcoin full node would
/// check before accepting the spend. Used by tests and examples to show
/// the produced transactions are genuinely valid.
pub fn verify_p2wpkh_spend(
    tx: &Transaction,
    spent: &[(Amount, icbtc_bitcoin::Script)],
) -> bool {
    use icbtc_bitcoin::script::{segwit_v0_sighash, ScriptKind};
    use icbtc_bitcoin::Script;
    use icbtc_tecdsa::ecdsa::{PublicKey, Signature};

    if tx.inputs.len() != spent.len() {
        return false;
    }
    for (index, (input, (value, script))) in tx.inputs.iter().zip(spent).enumerate() {
        let ScriptKind::P2wpkh(expected_hash) = script.classify() else {
            return false;
        };
        let [sig_bytes, pubkey_bytes] = input.witness.as_slice() else {
            return false;
        };
        let Some(pubkey) = PublicKey::from_compressed(pubkey_bytes) else {
            return false;
        };
        if pubkey.pubkey_hash() != expected_hash {
            return false;
        }
        let Some((der, sighash_flag)) = sig_bytes.split_last_chunk::<1>().map(|(d, f)| (d, f[0])) else {
            return false;
        };
        if sighash_flag != 0x01 {
            return false;
        }
        let Some(signature) = Signature::from_der(der) else {
            return false;
        };
        let script_code = Script::new_p2pkh(&expected_hash);
        let digest = segwit_v0_sighash(tx, index, &script_code, *value);
        if !pubkey.verify(&digest, &signature) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use icbtc_sim::SimTime;

    #[test]
    fn wallet_addresses_are_stable_and_distinct() {
        let system = System::new(SystemConfig::regtest(9));
        let a = Wallet::new("alpha");
        let b = Wallet::new("beta");
        assert_eq!(a.address(&system), a.address(&system));
        assert_ne!(a.address(&system), b.address(&system));
        assert_eq!(a.path(), Wallet::at_path(a.path().clone()).path());
    }

    #[test]
    fn empty_wallet_reports_zero_and_refuses_transfer() {
        let mut system = System::new(SystemConfig::regtest(10));
        system.btc_mut().run_until(SimTime::from_secs(3600));
        assert!(system.sync_canister(3000));
        let wallet = Wallet::new("empty");
        assert_eq!(wallet.balance(&mut system, 0).unwrap(), Amount::ZERO);
        let to = Wallet::new("other").address(&system);
        let err = wallet
            .transfer(&mut system, &to, Amount::from_sat(1000), Amount::from_sat(100))
            .unwrap_err();
        assert!(matches!(err, WalletError::InsufficientFunds { .. }));
    }
}

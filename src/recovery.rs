//! Crash–catch-up replay and recovery bookkeeping for the integrated
//! system.
//!
//! A crashed replica recovers by restoring the subnet's latest
//! checkpoint and deterministically re-executing everything consensus
//! finalized after it: the per-round adapter responses (recorded in the
//! system's ingest log) and the per-round ingress batches (recorded in
//! the subnet's input journal). Because execution is instruction-metered
//! and free of wall-clock or randomness, the replayed canister must land
//! on exactly the live canister's [`BitcoinCanister::state_hash`] — the
//! property [`CatchupReport::matches`] asserts and the recovery soak
//! measures.
//!
//! The replay itself is a pure function ([`replay_catchup`]) so tests
//! can drive it against hand-built logs; `System` wires it to its own
//! lifecycle plan and converts replayed instructions into a modeled
//! mean-time-to-recovery via the subnet's latency model.

use icbtc_canister::{BitcoinCanister, CanisterCall, StorageError};
use icbtc_core::GetSuccessorsResponse;
use icbtc_ic::subnet::{ExecutionContext, JournalRound, StateMachine, SubnetCheckpoint};
use icbtc_ic::Meter;
use icbtc_sim::{SimDuration, SimTime};

/// One finalized round's Bitcoin payload, as the block maker delivered
/// it: everything a restarted replica needs (beyond the ingress journal)
/// to re-execute the round bit-for-bit.
#[derive(Debug, Clone)]
pub struct IngestRecord {
    /// The round the response was executed in.
    pub round: u64,
    /// Finalization time of that round (the `ctx.now` of execution).
    pub finalized_at: SimTime,
    /// The Bitcoin-network unix timestamp passed to Algorithm 2.
    pub now_unix: u32,
    /// The adapter response that rode the IC block.
    pub response: GetSuccessorsResponse,
}

/// Running counters over every lifecycle event the system has injected —
/// the source for `BENCH_recovery.json` and `tests/recovery.rs`
/// assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Canister upgrades performed (serialize → drop node-local state →
    /// restore).
    pub upgrades: u64,
    /// Crash/restart catch-ups performed.
    pub catchups: u64,
    /// Catch-ups whose recovered state hash matched the live replica.
    pub catchup_matches: u64,
    /// Rounds replayed across all catch-ups.
    pub replayed_rounds_total: u64,
    /// Longest single catch-up, in replayed rounds.
    pub replayed_rounds_max: u64,
    /// Instructions re-executed across all catch-ups (including the
    /// modeled checkpoint-restore cost).
    pub replayed_instructions_total: u64,
    /// Modeled recovery time summed over all catch-ups, in nanoseconds.
    pub mttr_ns_total: u64,
    /// Slowest single modeled recovery, in nanoseconds.
    pub mttr_ns_max: u64,
    /// Per-round shadow-replica hash comparisons performed.
    pub divergence_checks: u64,
    /// Deliberate shadow-state corruptions injected.
    pub corruptions_injected: u64,
    /// Divergences the shadow detector flagged.
    pub divergence_detected: u64,
}

/// The outcome of one simulated crash/restart catch-up.
#[derive(Debug, Clone)]
pub struct CatchupReport {
    /// Round of the checkpoint the restart recovered from.
    pub checkpoint_round: u64,
    /// Size of that checkpoint.
    pub checkpoint_bytes: u64,
    /// Rounds re-executed on top of the checkpoint.
    pub replayed_rounds: u64,
    /// Instructions spent recovering: modeled restore cost plus every
    /// replayed ingest and ingress message.
    pub replayed_instructions: u64,
    /// Modeled mean-time-to-recovery (restore + replay at the subnet's
    /// execution rate).
    pub mttr: SimDuration,
    /// State hash of the recovered canister.
    pub recovered_state_hash: [u8; 32],
    /// State hash of the live (never-crashed) canister at the same round.
    pub live_state_hash: [u8; 32],
}

impl CatchupReport {
    /// Whether catch-up reconverged with the live replica.
    pub fn matches(&self) -> bool {
        self.recovered_state_hash == self.live_state_hash
    }
}

/// The outcome of one canister upgrade.
#[derive(Debug, Clone)]
pub struct UpgradeReport {
    /// Size of the stable-memory image carried across the upgrade.
    pub checkpoint_bytes: u64,
    /// Whether the replicated state hash survived the round trip (it
    /// always must; surfaced so tests state the invariant explicitly).
    pub state_hash_preserved: bool,
}

/// Restores `checkpoint` and replays every logged round after it, in
/// consensus order: the round's adapter response first (Algorithm 2),
/// then its finalized ingress batch. Returns the recovered canister,
/// the number of rounds replayed, and the instructions spent (modeled
/// restore cost plus metered re-execution).
///
/// Each replayed message runs under a fresh meter, mirroring the live
/// subnet's per-message metering, so the recovered canister's
/// instruction counters — and therefore its state hash — track the live
/// replica exactly.
///
/// # Errors
///
/// [`StorageError::Corrupt`] if the checkpoint bytes do not restore.
pub fn replay_catchup(
    checkpoint: &SubnetCheckpoint,
    log: &[IngestRecord],
    journal: &[JournalRound<CanisterCall>],
) -> Result<(BitcoinCanister, u64, u64), StorageError> {
    let mut canister = BitcoinCanister::restore(&checkpoint.bytes)?;
    let mut instructions = (checkpoint.bytes.len() as u64)
        .saturating_mul(icbtc_canister::metering::CHECKPOINT_RESTORE_PER_BYTE);
    let mut replayed_rounds = 0;
    for record in log.iter().filter(|r| r.round > checkpoint.round) {
        replayed_rounds += 1;
        let mut meter = Meter::new();
        let mut ctx =
            ExecutionContext { meter: &mut meter, now: record.finalized_at, round: record.round };
        canister.ingest_response(record.response.clone(), record.now_unix, &mut ctx);
        instructions += meter.take();
        for entry in journal.iter().filter(|e| e.round == record.round) {
            for input in &entry.inputs {
                let mut meter = Meter::new();
                let mut ctx = ExecutionContext {
                    meter: &mut meter,
                    now: entry.finalized_at,
                    round: entry.round,
                };
                canister.execute(input.clone(), &mut ctx);
                instructions += meter.take();
            }
        }
    }
    Ok((canister, replayed_rounds, instructions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::Network;
    use icbtc_canister::BitcoinCanister;
    use icbtc_core::IntegrationParams;

    fn regtest_canister() -> BitcoinCanister {
        BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest))
    }

    #[test]
    fn empty_log_catchup_is_just_the_restore() {
        let canister = regtest_canister();
        let checkpoint = SubnetCheckpoint {
            round: 5,
            at: SimTime::from_secs(10),
            bytes: canister.checkpoint_bytes(),
            state_hash: canister.state_hash(),
        };
        let (recovered, rounds, instructions) =
            replay_catchup(&checkpoint, &[], &[]).expect("valid checkpoint");
        assert_eq!(rounds, 0);
        assert_eq!(
            instructions,
            checkpoint.bytes.len() as u64 * icbtc_canister::metering::CHECKPOINT_RESTORE_PER_BYTE
        );
        assert_eq!(recovered.state_hash(), canister.state_hash());
    }

    #[test]
    fn rounds_at_or_before_the_checkpoint_are_not_replayed() {
        let canister = regtest_canister();
        let checkpoint = SubnetCheckpoint {
            round: 7,
            at: SimTime::from_secs(10),
            bytes: canister.checkpoint_bytes(),
            state_hash: canister.state_hash(),
        };
        let log: Vec<IngestRecord> = (5..=9)
            .map(|round| IngestRecord {
                round,
                finalized_at: SimTime::from_secs(round),
                now_unix: 1_600_000_000,
                response: GetSuccessorsResponse::default(),
            })
            .collect();
        let (_, rounds, _) = replay_catchup(&checkpoint, &log, &[]).expect("valid checkpoint");
        assert_eq!(rounds, 2, "only rounds 8 and 9 lie after the checkpoint");
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let canister = regtest_canister();
        let mut bytes = canister.checkpoint_bytes();
        bytes[0] ^= 0xFF;
        let checkpoint = SubnetCheckpoint {
            round: 0,
            at: SimTime::ZERO,
            bytes,
            state_hash: [0; 32],
        };
        assert!(replay_catchup(&checkpoint, &[], &[]).is_err());
    }
}

//! The full integrated system: simulated Bitcoin network, per-replica
//! Bitcoin adapters, the IC subnet hosting the Bitcoin canister, and the
//! subnet's threshold signing key (Figure 1 / Figure 4 of the paper).
//!
//! Per IC round, the flow matches §III: the random beacon picks a block
//! maker; *that replica's* adapter answers the canister's current
//! `GetSuccessors` request; the response rides the IC block and is folded
//! into the canister state by Algorithm 2 during execution. A Byzantine
//! block maker may instead inject attacker-chosen payloads — the
//! Lemma IV.3 scenario — via [`System::set_downtime_attack`].

use icbtc_adapter::BitcoinAdapter;
use icbtc_bitcoin::{Amount, Block, Network, OutPoint, Script, Transaction, TxIn, TxOut, Txid};
use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
use icbtc_canister::{BitcoinCanister, CallOutcome, CanisterCall};
use icbtc_core::{GetSuccessorsResponse, IntegrationParams};
use icbtc_ic::consensus::ConsensusConfig;
use icbtc_ic::subnet::Subnet;
use icbtc_ic::{LifecyclePlan, Meter};
use icbtc_sim::obs::FieldValue;
use icbtc_sim::{SimDuration, SimRng, SimTime};
use icbtc_tecdsa::ecdsa::Signature;
use icbtc_tecdsa::protocol::{DerivationPath, ThresholdKey};

use crate::recovery::{CatchupReport, IngestRecord, RecoveryStats, UpgradeReport};

/// Configuration of a full integrated deployment.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Bitcoin-network simulation parameters.
    pub btc: NetworkConfig,
    /// IC subnet consensus parameters.
    pub consensus: ConsensusConfig,
    /// Integration parameters (δ, τ, ℓ, …).
    pub params: IntegrationParams,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl SystemConfig {
    /// A small regtest deployment: 4 Bitcoin nodes, a 13-replica subnet,
    /// δ = 6 — the local-testing setup of §III-B.
    pub fn regtest(seed: u64) -> SystemConfig {
        SystemConfig {
            btc: NetworkConfig::regtest(4),
            consensus: ConsensusConfig::thirteen_replicas(),
            params: IntegrationParams::for_network(Network::Regtest),
            seed,
        }
    }

    /// A mainnet-like deployment (scaled difficulty, δ = 144).
    pub fn mainnet(seed: u64) -> SystemConfig {
        SystemConfig {
            btc: NetworkConfig::mainnet(8),
            consensus: ConsensusConfig::thirteen_replicas(),
            params: IntegrationParams::for_network(Network::Mainnet),
            seed,
        }
    }
}

/// An attacker payload source for the post-downtime scenario of
/// Lemma IV.3: Byzantine block makers deliver one fork block at a time
/// while claiming there are no further headers (`N = ∅`).
#[derive(Debug)]
pub struct DowntimeAttack {
    fork_blocks: Vec<Block>,
    next: usize,
}

impl DowntimeAttack {
    /// Creates the attack from a pre-mined fork (oldest block first).
    pub fn new(fork_blocks: Vec<Block>) -> DowntimeAttack {
        DowntimeAttack { fork_blocks, next: 0 }
    }

    /// Blocks already delivered.
    pub fn delivered(&self) -> usize {
        self.next
    }

    fn next_payload(&mut self) -> GetSuccessorsResponse {
        let blocks = match self.fork_blocks.get(self.next) {
            Some(block) => {
                self.next += 1;
                vec![block.clone()]
            }
            None => Vec::new(),
        };
        GetSuccessorsResponse { blocks, next: Vec::new() }
    }
}

/// Statistics of one replicated call through the full stack.
#[derive(Debug, Clone)]
pub struct ReplicatedOutcome {
    /// The canister's reply and cycles charge.
    pub outcome: CallOutcome,
    /// End-to-end latency experienced by the caller.
    pub latency: SimDuration,
    /// Instructions executed for the call.
    pub instructions: u64,
    /// Rounds the system stepped while waiting.
    pub rounds_waited: u64,
}

/// Statistics of one query call.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The canister's reply and cycles charge.
    pub outcome: CallOutcome,
    /// Sampled end-to-end latency.
    pub latency: SimDuration,
    /// Instructions executed.
    pub instructions: u64,
}

/// The integrated Bitcoin-on-IC system.
///
/// # Examples
///
/// ```
/// use icbtc::system::{System, SystemConfig};
///
/// let mut system = System::new(SystemConfig::regtest(7));
/// // Step a few rounds; the canister starts pulling in blocks.
/// system.run_rounds(5);
/// assert!(system.canister().state().is_synced() || system.btc().best_height() > 0);
/// ```
pub struct System {
    btc: BtcNetwork,
    subnet: Subnet<BitcoinCanister>,
    adapters: Vec<BitcoinAdapter>,
    key: ThresholdKey,
    rng: SimRng,
    attack: Option<DowntimeAttack>,
    rounds_executed: u64,
    plan: LifecyclePlan,
    ingest_log: Vec<IngestRecord>,
    shadow: Option<BitcoinCanister>,
    recovery: RecoveryStats,
}

impl System {
    /// Builds and wires the full system.
    pub fn new(config: SystemConfig) -> System {
        let mut rng = SimRng::seed_from(config.seed);
        let btc = BtcNetwork::new(config.btc.clone(), rng.next_u64());
        let n = config.consensus.n;
        let adapters: Vec<BitcoinAdapter> =
            (0..n).map(|_| BitcoinAdapter::new(config.params, rng.next_u64())).collect();
        let canister = BitcoinCanister::new(config.params);
        let subnet = Subnet::new(canister, config.consensus.clone(), rng.next_u64());
        // Threshold key: reconstruction threshold 2f+1, the certification
        // threshold of the IC.
        let f = (n - 1) / 3;
        let key = ThresholdKey::generate(n, 2 * f + 1, &mut rng);
        System {
            btc,
            subnet,
            adapters,
            key,
            rng,
            attack: None,
            rounds_executed: 0,
            plan: LifecyclePlan::none(),
            ingest_log: Vec::new(),
            shadow: None,
            recovery: RecoveryStats::default(),
        }
    }

    /// The simulated Bitcoin network.
    pub fn btc(&self) -> &BtcNetwork {
        &self.btc
    }

    /// Mutable access to the Bitcoin network (mining control, adversary
    /// injection).
    pub fn btc_mut(&mut self) -> &mut BtcNetwork {
        &mut self.btc
    }

    /// The Bitcoin canister.
    pub fn canister(&self) -> &BitcoinCanister {
        self.subnet.state()
    }

    /// The IC subnet.
    pub fn subnet(&self) -> &Subnet<BitcoinCanister> {
        &self.subnet
    }

    /// The subnet's threshold signing key.
    pub fn threshold_key(&self) -> &ThresholdKey {
        &self.key
    }

    /// One replica's adapter (inspection).
    pub fn adapter(&self, replica: usize) -> &BitcoinAdapter {
        &self.adapters[replica]
    }

    /// Current simulated time (the subnet clock; the Bitcoin network is
    /// kept caught up to it).
    pub fn now(&self) -> SimTime {
        self.subnet.now()
    }

    /// Rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Merges every layer's metrics registry — btcnet, all adapters, the
    /// subnet, and the canister — into one deterministic snapshot. Metric
    /// names are layer-prefixed, so merging only aggregates the adapters
    /// (counters add, gauges sum across the replica fleet).
    pub fn merged_metrics(&self) -> icbtc_sim::obs::MetricsRegistry {
        let mut merged = icbtc_sim::obs::MetricsRegistry::new();
        merged.merge_from(&self.btc.obs().metrics);
        for adapter in &self.adapters {
            merged.merge_from(&adapter.obs().metrics);
        }
        merged.merge_from(&self.subnet.obs().metrics);
        merged.merge_from(&self.canister().obs().metrics);
        // Surface silent trace loss: each component's ring-buffer drop
        // count becomes a labelled gauge, so a snapshot shows whether any
        // trace dump is missing records. Adapters share a component tag
        // and aggregate by summing.
        let mut dropped: std::collections::BTreeMap<&'static str, i64> =
            std::collections::BTreeMap::new();
        for obs in std::iter::once(self.btc.obs())
            .chain(self.adapters.iter().map(|a| a.obs()))
            .chain(std::iter::once(self.subnet.obs()))
            .chain(std::iter::once(self.canister().obs()))
        {
            *dropped.entry(obs.component()).or_insert(0) += obs.trace.dropped() as i64;
        }
        for (component, count) in dropped {
            merged.set_gauge_with("trace_dropped_records", &[("component", component)], count);
        }
        merged
    }

    /// Renders the system-wide deterministic profile report: every
    /// component's frame profiler merged into one tree under a
    /// per-component root child (`canister;…`, `subnet;…`, `adapter;…`,
    /// `btcnet;…`), then rendered as a top-`top_n` self-cost table plus
    /// collapsed-stack flamegraph lines. Canister frames are denominated
    /// in metered instructions; the other layers in modeled service
    /// units. Byte-identical across same-seed runs.
    // icbtc-lint: node-local -- profile reports are per-replica diagnostics
    pub fn profile_report(&self, top_n: usize) -> String {
        let mut merged = icbtc_sim::obs::Profiler::new();
        merged.merge_under("canister", &self.canister().obs().prof);
        merged.merge_under("subnet", &self.subnet.obs().prof);
        for adapter in &self.adapters {
            merged.merge_under("adapter", &adapter.obs().prof);
        }
        merged.merge_under("btcnet", &self.btc.obs().prof);
        merged.render_report(top_n)
    }

    /// Dumps every layer's trace as JSONL: btcnet, adapter 0 (the others
    /// see statistically identical traffic), the subnet, the canister.
    /// Each line carries its component tag; within a component, records
    /// are ordered by sequence number.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.btc.obs().trace.dump_jsonl());
        if let Some(adapter) = self.adapters.first() {
            out.push_str(&adapter.obs().trace.dump_jsonl());
        }
        out.push_str(&self.subnet.obs().trace.dump_jsonl());
        out.push_str(&self.canister().obs().trace.dump_jsonl());
        out
    }

    /// Arms the Lemma IV.3 downtime attack: while active, Byzantine block
    /// makers feed `attack`'s fork blocks one per round with `N = ∅`;
    /// honest makers keep answering from their adapters.
    pub fn set_downtime_attack(&mut self, attack: DowntimeAttack) {
        self.attack = Some(attack);
    }

    /// Disarms the attack, returning how many fork blocks were delivered.
    pub fn clear_downtime_attack(&mut self) -> usize {
        self.attack.take().map(|a| a.delivered()).unwrap_or(0)
    }

    /// Stalls the subnet (canister downtime) while the Bitcoin network
    /// keeps producing blocks.
    pub fn stall_subnet(&mut self, duration: SimDuration) {
        self.subnet.stall(duration);
        let deadline = self.subnet.now();
        self.btc.run_until(deadline);
    }

    /// Executes one IC round end-to-end: catch the Bitcoin network up to
    /// subnet time, run adapter upkeep, let the round's block maker
    /// assemble the Bitcoin payload, and execute Algorithm 2 plus the
    /// ingress batch.
    pub fn step_round(&mut self) -> icbtc_ic::RoundReport<CallOutcome> {
        // Unify the clocks: if the Bitcoin network ran ahead (e.g. the
        // driver pre-mined a chain), the subnet clock jumps forward; then
        // the network is caught up to the subnet.
        let btc_now = self.btc.now();
        if btc_now > self.subnet.now() {
            self.subnet.stall(btc_now - self.subnet.now());
        }
        let deadline = self.subnet.now();
        self.btc.run_until(deadline);
        for adapter in &mut self.adapters {
            adapter.step(&mut self.btc);
        }
        // Let adapter traffic settle within the round.
        let settle = self.rng.normal(SimDuration::from_millis(300), SimDuration::from_millis(80));
        self.btc.run_until(deadline + settle);

        let request = self.subnet.state_mut().state_mut().make_request();
        // A crash-recovery log or shadow replica needs the round's exact
        // Bitcoin payload; capture it out of the execution closure.
        let log_needed = self.shadow.is_some() || !self.plan.crashes.is_empty();
        let mut observed: Option<(GetSuccessorsResponse, u32)> = None;
        let btc = &mut self.btc;
        let adapters = &mut self.adapters;
        let attack = &mut self.attack;
        let report = self.subnet.execute_round_with(|canister, ctx, info| {
            let response = if info.maker_is_byzantine {
                match attack.as_mut() {
                    Some(active) => active.next_payload(),
                    // Without an armed attack, Byzantine makers simply
                    // contribute nothing (omission).
                    None => GetSuccessorsResponse::default(),
                }
            } else {
                adapters[info.block_maker.0 as usize].handle_request(btc, &request)
            };
            let now_unix = btc.unix_time(ctx.now);
            if log_needed {
                observed = Some((response.clone(), now_unix));
            }
            canister.ingest_response(response, now_unix, ctx);
        });
        self.rounds_executed += 1;
        if let Some((response, now_unix)) = observed {
            let record = IngestRecord {
                round: report.info.round,
                finalized_at: report.info.finalized_at,
                now_unix,
                response,
            };
            self.replay_on_shadow(&record);
            if !self.plan.crashes.is_empty() {
                self.ingest_log.push(record);
            }
        }
        self.run_lifecycle_events(report.info.round);
        report
    }

    /// Installs a deterministic lifecycle plan: configures the subnet's
    /// checkpoint cadence and input journal, starts the shadow replica if
    /// the plan wants one, and takes an immediate baseline checkpoint so
    /// even a crash before the first cadence point has something to
    /// recover from. Subsequent [`System::step_round`] calls fire the
    /// plan's upgrades, crashes, and shadow corruptions after the named
    /// rounds.
    pub fn set_lifecycle_plan(&mut self, plan: LifecyclePlan) {
        self.subnet.set_checkpoint_cadence(plan.checkpoint_every);
        self.subnet.set_input_journal(!plan.crashes.is_empty() || plan.wants_shadow());
        self.ingest_log.clear();
        self.shadow = if plan.wants_shadow() {
            // The shadow boots the way a fresh replica would: from the
            // live canister's checkpoint image, not a memory clone.
            Some(
                BitcoinCanister::restore(&self.canister().checkpoint_bytes())
                    .expect("self-produced checkpoint restores"),
            )
        } else {
            None
        };
        if plan.checkpoint_every > 0 || !plan.crashes.is_empty() {
            self.subnet.take_checkpoint();
        }
        self.plan = plan;
    }

    /// The lifecycle plan in force.
    pub fn lifecycle_plan(&self) -> &LifecyclePlan {
        &self.plan
    }

    /// Counters over every lifecycle event injected so far.
    // icbtc-lint: node-local -- recovery statistics are harness diagnostics, never read back into replicated execution
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The shadow replica's current state hash, if one is running.
    // icbtc-lint: node-local -- the shadow replica is a divergence detector, not part of replicated state
    pub fn shadow_state_hash(&self) -> Option<[u8; 32]> {
        self.shadow.as_ref().map(|shadow| shadow.state_hash())
    }

    /// Re-executes one finalized round on the shadow replica: the same
    /// adapter response, then the same ingress batch (still in the
    /// journal — pruning happens after). Metering is per-message with a
    /// fresh meter, exactly like the live subnet, so the shadow's
    /// instruction counters track the live canister's.
    fn replay_on_shadow(&mut self, record: &IngestRecord) {
        let Some(mut shadow) = self.shadow.take() else { return };
        let mut meter = Meter::new();
        let mut ctx = icbtc_ic::ExecutionContext {
            meter: &mut meter,
            now: record.finalized_at,
            round: record.round,
        };
        shadow.ingest_response(record.response.clone(), record.now_unix, &mut ctx);
        use icbtc_ic::StateMachine;
        let inputs: Vec<CanisterCall> = self
            .subnet
            .input_journal()
            .iter()
            .filter(|entry| entry.round == record.round)
            .flat_map(|entry| entry.inputs.iter().cloned())
            .collect();
        for input in inputs {
            let mut meter = Meter::new();
            let mut ctx = icbtc_ic::ExecutionContext {
                meter: &mut meter,
                now: record.finalized_at,
                round: record.round,
            };
            shadow.execute(input, &mut ctx);
        }
        self.shadow = Some(shadow);
    }

    /// Fires the plan's events scheduled after `round`, runs the per-round
    /// divergence check, and prunes the recovery log and journal back to
    /// the latest checkpoint.
    fn run_lifecycle_events(&mut self, round: u64) {
        if self.plan.is_empty() && self.shadow.is_none() {
            return;
        }
        // Seeded corruption: deface the shadow's replicated state, then
        // let the detector below prove it notices.
        if self.plan.corruptions.contains(&round) {
            if let Some(shadow) = self.shadow.as_mut() {
                shadow.state_mut().queue_transaction(corruption_transaction(round));
                self.recovery.corruptions_injected += 1;
                self.subnet.obs_mut().metrics.inc("ic_divergence_corruptions_injected_total");
            }
        }
        // Shadow divergence check: compare per-round state hashes.
        if let Some(shadow) = self.shadow.as_ref() {
            let live = self.subnet.state().state_hash();
            let shadow_hash = shadow.state_hash();
            self.recovery.divergence_checks += 1;
            let diverged = live != shadow_hash;
            let at = self.subnet.now();
            let obs = self.subnet.obs_mut();
            obs.metrics.inc("ic_divergence_checks_total");
            if diverged {
                obs.metrics.inc("ic_divergence_detected_total");
                obs.trace.event("ic.divergence", at, &[("round", FieldValue::U64(round))]);
                self.recovery.divergence_detected += 1;
                // A diverged replica is replaced wholesale; re-seed the
                // shadow from the live canister's checkpoint image so the
                // detector is armed for the next injection.
                self.shadow = Some(
                    BitcoinCanister::restore(&self.canister().checkpoint_bytes())
                        .expect("self-produced checkpoint restores"),
                );
            }
        }
        if self.plan.upgrades.contains(&round) {
            self.upgrade_canister();
        }
        if self.plan.crashes.contains(&round) {
            self.simulate_crash_catchup();
        }
        // Once a checkpoint exists, everything at or before it is dead
        // weight for catch-up.
        let keep_after = match self.subnet.latest_checkpoint() {
            Some(checkpoint) if !self.plan.crashes.is_empty() => checkpoint.round,
            // No crashes planned: the log and journal only ever needed to
            // cover the round just replayed on the shadow.
            _ => round,
        };
        self.subnet.prune_journal_through(keep_after);
        self.ingest_log.retain(|record| record.round > keep_after);
    }

    /// Performs a canister upgrade in place: serialize to stable memory,
    /// drop the canister (including all node-local state — query cache,
    /// profiler, metrics, trace), restore from the image. Replicated
    /// state must survive byte-for-byte.
    pub fn upgrade_canister(&mut self) -> UpgradeReport {
        let before = self.canister().state_hash();
        let image = self.canister().checkpoint_bytes();
        let restored = BitcoinCanister::restore(&image)
            .expect("self-produced checkpoint restores");
        let after = restored.state_hash();
        *self.subnet.state_mut() = restored;
        self.recovery.upgrades += 1;
        let obs = self.subnet.obs_mut();
        obs.metrics.inc("ic_recovery_upgrades_total");
        obs.metrics.add("ic_recovery_upgrade_bytes_total", image.len() as u64);
        UpgradeReport { checkpoint_bytes: image.len() as u64, state_hash_preserved: before == after }
    }

    /// Simulates a replica crash/restart: restore the latest checkpoint
    /// and replay the post-checkpoint ingest log and ingress journal,
    /// then compare the recovered state hash against the live replica
    /// that never crashed. Returns `None` when no checkpoint exists yet.
    pub fn simulate_crash_catchup(&mut self) -> Option<CatchupReport> {
        let checkpoint = self.subnet.latest_checkpoint()?.clone();
        let (recovered, replayed_rounds, replayed_instructions) =
            crate::recovery::replay_catchup(&checkpoint, &self.ingest_log, self.subnet.input_journal())
                .expect("self-produced checkpoint restores");
        let mttr = self.subnet.latency_model().execution_time(replayed_instructions);
        let report = CatchupReport {
            checkpoint_round: checkpoint.round,
            checkpoint_bytes: checkpoint.bytes.len() as u64,
            replayed_rounds,
            replayed_instructions,
            mttr,
            recovered_state_hash: recovered.state_hash(),
            live_state_hash: self.canister().state_hash(),
        };
        let stats = &mut self.recovery;
        stats.catchups += 1;
        if report.matches() {
            stats.catchup_matches += 1;
        }
        stats.replayed_rounds_total += replayed_rounds;
        stats.replayed_rounds_max = stats.replayed_rounds_max.max(replayed_rounds);
        stats.replayed_instructions_total += replayed_instructions;
        stats.mttr_ns_total = stats.mttr_ns_total.saturating_add(mttr.as_nanos());
        stats.mttr_ns_max = stats.mttr_ns_max.max(mttr.as_nanos());
        let at = self.subnet.now();
        let obs = self.subnet.obs_mut();
        obs.metrics.inc("ic_recovery_catchups_total");
        obs.metrics.add("ic_recovery_replayed_rounds_total", replayed_rounds);
        obs.metrics.add("ic_recovery_replay_instructions_total", replayed_instructions);
        obs.metrics.observe("ic_recovery_mttr_ns", mttr.as_nanos());
        if report.matches() {
            obs.metrics.inc("ic_recovery_catchup_matches_total");
        } else {
            obs.metrics.inc("ic_recovery_catchup_mismatches_total");
        }
        obs.trace.event(
            "ic.recovery",
            at,
            &[
                ("checkpoint_round", FieldValue::U64(checkpoint.round)),
                ("replayed_rounds", FieldValue::U64(replayed_rounds)),
                ("matched", FieldValue::U64(report.matches() as u64)),
            ],
        );
        Some(report)
    }

    /// Steps `n` rounds, discarding reports.
    pub fn run_rounds(&mut self, n: usize) {
        for _ in 0..n {
            self.step_round();
        }
    }

    /// Steps rounds until the canister holds block bodies all the way to
    /// the Bitcoin network's best height, or `max_rounds` elapse. Returns
    /// `true` on success.
    pub fn sync_canister(&mut self, max_rounds: usize) -> bool {
        let caught_up = |system: &System| {
            system.canister().state().available_tip_height() >= system.btc.best_height()
                && system.canister().state().is_synced()
        };
        for _ in 0..max_rounds {
            if caught_up(self) {
                return true;
            }
            self.step_round();
        }
        caught_up(self)
    }

    /// Issues a replicated (update) call and steps rounds until its
    /// certified response is available.
    pub fn replicated(&mut self, call: CanisterCall) -> ReplicatedOutcome {
        let id = self.subnet.submit(call);
        let mut rounds = 0;
        loop {
            let report = self.step_round();
            rounds += 1;
            if let Some(result) = report.results.into_iter().find(|r| r.id == id) {
                return ReplicatedOutcome {
                    latency: result.latency(),
                    instructions: result.instructions,
                    outcome: result.output,
                    rounds_waited: rounds,
                };
            }
            assert!(rounds < 10_000, "replicated call starved");
        }
    }

    /// Issues a query (single-replica, non-certified) call.
    pub fn query(&mut self, call: CanisterCall) -> QueryOutcome {
        let (outcome, instructions, latency) = self.subnet.query(
            |canister, meter| canister.query(&call, meter),
            estimate_response_bytes,
        );
        QueryOutcome { outcome, latency, instructions }
    }

    /// Issues a query through the serving replica's tip-keyed query
    /// cache. Replies are identical to [`System::query`]; repeated calls
    /// at an unchanged tip are served at the flat cache-hit cost.
    pub fn query_cached(&mut self, call: CanisterCall) -> QueryOutcome {
        let (outcome, instructions, latency) = self.subnet.query_mut(
            |canister, meter| canister.query_cached(&call, meter),
            estimate_response_bytes,
        );
        QueryOutcome { outcome, latency, instructions }
    }

    /// Mines `blocks` Bitcoin blocks paying their coinbases to `address`
    /// and propagates them — the standard way to fund a wallet on
    /// regtest. The canister must be re-synced afterwards to see them.
    pub fn fund_address(&mut self, address: &icbtc_bitcoin::Address, blocks: usize) {
        let script = address.script_pubkey();
        for _ in 0..blocks {
            self.btc.mine_block_paying(icbtc_btcnet::NodeId(0), script.clone());
            // Give gossip a moment between blocks.
            let now = self.btc.now();
            self.btc.run_until(now + SimDuration::from_secs(2));
        }
    }

    /// Steps rounds until `txid` appears in a block on node 0's best
    /// chain, forcing a Bitcoin block every `blocks_every` rounds so the
    /// mempool drains promptly. Returns the confirmation height, or
    /// `None` after `max_rounds`.
    pub fn await_transaction_mined(
        &mut self,
        txid: icbtc_bitcoin::Txid,
        max_rounds: usize,
    ) -> Option<u64> {
        for round in 0..max_rounds {
            self.step_round();
            if round % 8 == 7 {
                // Force periodic block production so the test is not at
                // the mercy of the Poisson process.
                self.btc.mine_block_paying(
                    icbtc_btcnet::NodeId(0),
                    icbtc_bitcoin::Script::new_op_return(b"awaiting"),
                );
            }
            let chain = self.btc.node(icbtc_btcnet::NodeId(0)).chain();
            for hash in chain.best_chain_hashes() {
                let Some(block) = chain.block(&hash) else { continue };
                if block.txdata.iter().any(|t| t.txid() == txid) {
                    return chain.header(&hash).map(|s| s.height);
                }
            }
        }
        None
    }

    /// Threshold-signs `digest` under the key derived at `path`, using
    /// the 2f+1 lowest-indexed honest replicas. The resulting signature
    /// verifies under `threshold_key().derived_public_key(path)`.
    ///
    /// # Panics
    ///
    /// Panics if combination fails, which cannot happen with honest
    /// majority participation.
    pub fn sign_with_ecdsa(&mut self, path: &DerivationPath, digest: [u8; 32]) -> Signature {
        let session = self.key.open_ecdsa(path, digest, &mut self.rng);
        let threshold = self.key.threshold();
        let partials: Vec<_> =
            (1..=threshold as u32).map(|i| session.partial_signature(i)).collect();
        session.combine(&partials).expect("honest quorum signs")
    }

    /// Threshold-signs `message` with BIP-340 Schnorr under the key
    /// derived at `path` — the taproot counterpart of
    /// [`System::sign_with_ecdsa`]. Returns the signature and the x-only
    /// public key it verifies under.
    ///
    /// # Panics
    ///
    /// Panics if combination fails, which cannot happen with honest
    /// majority participation.
    pub fn sign_with_schnorr(
        &mut self,
        path: &DerivationPath,
        message: [u8; 32],
    ) -> (icbtc_tecdsa::schnorr::SchnorrSignature, [u8; 32]) {
        let session = self.key.open_schnorr(path, message, &mut self.rng);
        let threshold = self.key.threshold();
        let partials: Vec<_> =
            (1..=threshold as u32).map(|i| session.partial_signature(i)).collect();
        let pubkey_x = session.public_key_x();
        (session.combine(&partials).expect("honest quorum signs"), pubkey_x)
    }
}

/// A deterministic piece of state junk for seeded shadow corruption: a
/// queued outbound transaction the live replica never saw, keyed by the
/// injection round so distinct injections produce distinct corruption.
fn corruption_transaction(round: u64) -> Transaction {
    Transaction {
        version: 2,
        inputs: vec![TxIn::new(OutPoint::new(Txid([0xC0; 32]), round as u32))],
        outputs: vec![TxOut::new(Amount::from_sat(1), Script::new_op_return(b"corrupt"))],
        lock_time: round as u32,
    }
}

/// Rough serialized size of a canister reply, for the query latency
/// model's transfer term.
fn estimate_response_bytes(outcome: &CallOutcome) -> usize {
    // Single source of truth with the query cache's per-byte accounting.
    match &outcome.reply {
        Ok(reply) => reply.serialized_size() as usize,
        Err(_) => 32,
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("rounds", &self.rounds_executed)
            .field("btc_height", &self.btc.best_height())
            .field("anchor_height", &self.canister().state().anchor_height())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{Address, AddressKind};
    use icbtc_canister::CanisterReply;

    #[test]
    fn canister_tracks_the_network() {
        let mut system = System::new(SystemConfig::regtest(1));
        // Produce some chain first.
        system.btc_mut().run_until(SimTime::from_secs(4 * 3600));
        assert!(system.btc().best_height() > 3);
        assert!(system.sync_canister(4000), "canister must catch up");
        let (_, tip) = system.canister().state().best_tip();
        assert_eq!(tip, system.btc().best_height());
        // δ = 6 on regtest: the anchor trails the tip by about δ.
        let anchor = system.canister().state().anchor_height();
        assert!(tip - anchor <= 8, "anchor {anchor} vs tip {tip}");
    }

    #[test]
    fn replicated_and_query_calls_work() {
        let mut system = System::new(SystemConfig::regtest(2));
        system.btc_mut().run_until(SimTime::from_secs(3600));
        assert!(system.sync_canister(4000));
        let address = Address::new(Network::Regtest, AddressKind::P2wpkh([1; 20]));
        let call = CanisterCall::GetBalance { address, min_confirmations: 0 };

        let replicated = system.replicated(call.clone());
        assert!(matches!(replicated.outcome.reply, Ok(CanisterReply::Balance(_))));
        let secs = replicated.latency.as_secs_f64();
        assert!((2.0..30.0).contains(&secs), "replicated latency {secs}s");

        let query = system.query(call);
        assert!(matches!(query.outcome.reply, Ok(CanisterReply::Balance(_))));
        assert!(query.latency < replicated.latency);
    }

    #[test]
    fn threshold_signing_through_the_system() {
        let mut system = System::new(SystemConfig::regtest(3));
        let path = DerivationPath::new([b"wallet-0".to_vec()]);
        let digest = [0x42u8; 32];
        let signature = system.sign_with_ecdsa(&path, digest);
        let pubkey = system.threshold_key().derived_public_key(&path);
        assert!(pubkey.verify(&digest, &signature));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut system = System::new(SystemConfig::regtest(seed));
            system.btc_mut().run_until(SimTime::from_secs(2 * 3600));
            system.run_rounds(50);
            (
                system.btc().best_height(),
                system.canister().state().anchor_height(),
                system.canister().state().best_tip().0,
            )
        };
        assert_eq!(run(11), run(11));
    }
}

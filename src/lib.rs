//! # icbtc — Bitcoin smart contracts on a simulated Internet Computer
//!
//! A from-scratch, laptop-scale reproduction of *"Enabling Bitcoin Smart
//! Contracts on the Internet Computer"* (ICDCS 2025): the Bitcoin adapter
//! (§III-B, Algorithm 1), the Bitcoin canister (§III-C, Algorithm 2), the
//! δ-stability framework (§II-C), and every substrate they need — a
//! Bitcoin data model and simulated P2P network, a simulated IC subnet
//! with instruction metering and cycles accounting, and threshold
//! ECDSA/Schnorr signing — plus the evaluation harness regenerating the
//! paper's figures (see the `icbtc-bench` crate).
//!
//! ## Quick start
//!
//! ```
//! use icbtc::system::{System, SystemConfig};
//! use icbtc::contracts::Wallet;
//! use icbtc_sim::SimTime;
//!
//! // Spin up a regtest deployment: Bitcoin network + 13-replica subnet.
//! let mut system = System::new(SystemConfig::regtest(42));
//! // Let the Bitcoin network mine for a simulated hour, then sync.
//! system.btc_mut().run_until(SimTime::from_secs(3600));
//! assert!(system.sync_canister(3000));
//!
//! // A smart contract holds bitcoin under a threshold-derived address.
//! let wallet = Wallet::new("quickstart");
//! let address = wallet.address(&system);
//! println!("contract address: {address}");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Paper section | Contents |
//! |---|---|---|
//! | [`icbtc_sim`] | — | deterministic discrete-event kernel |
//! | [`icbtc_bitcoin`] | §II-B | Bitcoin data model, PoW, addresses |
//! | [`icbtc_tecdsa`] | §I | secp256k1, threshold ECDSA/Schnorr |
//! | [`icbtc_btcnet`] | — | simulated Bitcoin P2P network |
//! | [`icbtc_ic`] | §II-A | simulated IC subnet |
//! | [`icbtc_core`] | §II-C | δ-stability, adapter⇄canister protocol |
//! | [`icbtc_adapter`] | §III-B | the Bitcoin adapter (Algorithm 1) |
//! | [`icbtc_canister`] | §III-C | the Bitcoin canister (Algorithm 2) |
//! | [`crate::system`] | §III-A | the integrated system |
//! | [`crate::contracts`] | §I | canister-held Bitcoin wallets |

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod contracts;
pub mod recovery;
pub mod system;

pub use contracts::{verify_p2tr_key_spend, verify_p2wpkh_spend, TaprootWallet, Wallet, WalletError};
pub use recovery::{CatchupReport, IngestRecord, RecoveryStats, UpgradeReport};
pub use system::{DowntimeAttack, QueryOutcome, ReplicatedOutcome, System, SystemConfig};

// Re-export the component crates under stable names so downstream users
// (and the examples/benches) need only depend on `icbtc`.
pub use icbtc_adapter as adapter;
pub use icbtc_bitcoin as bitcoin;
pub use icbtc_btcnet as btcnet;
pub use icbtc_canister as canister;
pub use icbtc_core as core;
pub use icbtc_ic as ic;
pub use icbtc_sim as sim;
pub use icbtc_tecdsa as tecdsa;

//! Observability integrity: the deterministic metrics/trace layer must be
//! a pure function of the seed, agree with ground truth the simulation
//! tracks independently, and expose the production-style `get_metrics`
//! endpoint without perturbing replicated state.

use icbtc::canister::{CanisterCall, CanisterReply};
use icbtc::contracts::Wallet;
use icbtc::sim::SimTime;
use icbtc::system::{System, SystemConfig};

/// Boots a regtest deployment, mines one simulated hour of Bitcoin, and
/// executes `rounds` consensus rounds.
fn run(seed: u64, rounds: usize) -> System {
    let mut system = System::new(SystemConfig::regtest(seed));
    system.btc_mut().run_until(SimTime::from_secs(3600));
    system.run_rounds(rounds);
    system
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run(7, 60);
    let b = run(7, 60);

    let snap_a = a.merged_metrics().snapshot_json();
    let snap_b = b.merged_metrics().snapshot_json();
    assert!(!snap_a.is_empty());
    assert_eq!(snap_a, snap_b, "same-seed metric snapshots must be byte-identical");

    let trace_a = a.trace_jsonl();
    let trace_b = b.trace_jsonl();
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same-seed traces must be byte-identical");

    // The snapshot covers all four layers.
    for prefix in ["adapter_", "canister_", "ic_", "btcnet_"] {
        assert!(snap_a.contains(prefix), "snapshot is missing the {prefix} layer");
    }
    // The trace carries sim-time-stamped records from the span'd layers.
    for needle in ["\"kind\": \"span_start\"", "\"kind\": \"span_end\"", "\"kind\": \"event\""] {
        assert!(trace_a.contains(needle), "trace is missing {needle}");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run(7, 60);
    let b = run(8, 60);
    // Mining times are Poisson draws from the seed; the byte-identity
    // assertion above would be vacuous if these matched too.
    assert_ne!(a.trace_jsonl(), b.trace_jsonl());
}

#[test]
fn registry_agrees_with_ground_truth() {
    let system = run(42, 80);
    let metrics = system.merged_metrics();

    assert_eq!(
        metrics.counter("ic_rounds_total"),
        system.rounds_executed(),
        "round counter must match the subnet's own round count"
    );
    assert_eq!(
        metrics.counter("btcnet_blocks_mined_total"),
        system.btc().blocks_mined(),
        "mined-block counter must match the network's tally"
    );
    assert_eq!(
        metrics.gauge("btcnet_best_height") as u64,
        system.btc().best_height(),
        "best-height gauge must match the network tip"
    );
    // The subnet executed rounds, so instruction accounting must be live.
    assert!(metrics.counter("ic_instructions_total") > 0);
}

#[test]
fn get_metrics_mirrors_state_without_mutating_it() {
    let mut system = run(42, 80);
    // The UTXO set holds only δ-stable, address-indexed outputs: mine
    // enough coinbases to a real wallet address that some fall below the
    // anchor, then sync so the canister sees them.
    let wallet = Wallet::new("obs-probe");
    system.fund_address(&wallet.address(&system), 8);
    assert!(system.sync_canister(5000), "canister failed to sync");
    let before = system.canister().obs().metrics.snapshot_json();

    let outcome = system.query(CanisterCall::GetMetrics);
    let reply = outcome.outcome.reply.expect("get_metrics cannot fail");
    let CanisterReply::Metrics(m) = reply else {
        panic!("expected a Metrics reply, got {reply:?}");
    };
    // An unpaid query, like the production canister's /metrics endpoint.
    assert_eq!(outcome.outcome.cycles_charged, 0);

    let state = system.canister().state();
    assert_eq!(m.main_chain_height, state.best_tip().1);
    assert_eq!(m.anchor_height, state.anchor_height());
    assert_eq!(m.utxo_count, state.utxos().len() as u64);
    assert_eq!(m.unstable_blocks, state.unstable_block_count() as u64);
    assert_eq!(m.is_synced, state.is_synced());
    assert!(m.main_chain_height > 0, "an hour of mining must be visible");
    assert!(m.utxo_count > 0, "coinbases must have landed in the UTXO set");
    assert!(m.instructions_total > 0, "replicated calls must be metered");

    // Queries execute on a single replica; recording them would fork
    // replicated metrics. The endpoint must therefore be read-only.
    let after = system.canister().obs().metrics.snapshot_json();
    assert_eq!(before, after, "get_metrics query must not mutate the registry");
}

/// Boots a deployment, funds a wallet, syncs, and issues a few cached
/// queries so the profile covers both the ingest and query hot paths.
fn run_profiled(seed: u64) -> System {
    let mut system = System::new(SystemConfig::regtest(seed));
    let wallet = Wallet::new("prof-probe");
    let address = wallet.address(&system);
    system.fund_address(&address, 8);
    assert!(system.sync_canister(5000), "canister failed to sync");
    for _ in 0..3 {
        system.query_cached(CanisterCall::GetBalance { address, min_confirmations: 0 });
    }
    system
}

#[test]
fn profile_report_is_deterministic_and_names_hot_paths() {
    let a = run_profiled(42);
    let b = run_profiled(42);

    let report = a.profile_report(25);
    assert_eq!(
        report,
        b.profile_report(25),
        "same-seed profile reports must be byte-identical"
    );
    assert_eq!(report, a.profile_report(25), "rendering a report must be read-only");

    // Every layer contributes a subtree.
    for component in ["canister;", "subnet;", "adapter;", "btcnet;"] {
        assert!(report.contains(component), "report is missing the {component} subtree");
    }
    // The named hot paths show up with nonzero self attribution: a
    // collapsed-stack line is only emitted when self_units > 0.
    let collapsed = report
        .split("## collapsed stacks\n")
        .nth(1)
        .expect("report must contain a collapsed-stacks section");
    for frame in ["hashing", "script_parse", "response_serialize", "cache_lookup"] {
        assert!(
            collapsed.lines().any(|l| l.contains(frame)),
            "no nonzero self attribution for hot-path frame {frame}"
        );
    }
}

#[test]
fn profile_self_costs_sum_to_root_total() {
    let system = run_profiled(42);
    let report = system.profile_report(10);

    let header = report
        .lines()
        .find(|l| l.starts_with("frames: "))
        .expect("report must carry a frames/max_depth/root_total header");
    let root_total: u64 = header
        .rsplit("root_total: ")
        .next()
        .unwrap()
        .trim()
        .parse()
        .expect("root_total must be an integer");
    assert!(root_total > 0, "a synced run must account nonzero work");

    // Collapsed stacks list every frame with self > 0; zero-self frames
    // contribute nothing, so the line values must sum exactly to the
    // root total (the profiler's core invariant, checked end to end).
    let collapsed = report.split("## collapsed stacks\n").nth(1).unwrap();
    let sum: u64 = collapsed
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(sum, root_total, "Σ self over all frames must equal the root total");
}

#[test]
fn trace_overflow_is_surfaced_as_dropped_records_gauge() {
    // Long enough that at least one component's trace ring (capacity
    // 4096) wraps — each consensus round emits a span-start/span-end
    // pair, so 2300 rounds overflow the subnet and canister rings. The
    // merged registry must then report the loss rather than silently
    // truncating the JSONL dump.
    let mut system = System::new(SystemConfig::regtest(9));
    system.btc_mut().run_until(SimTime::from_secs(3600));
    system.run_rounds(2300);
    let metrics = system.merged_metrics();

    let components = ["btcnet", "adapter", "ic", "canister"];
    let total: i64 = components
        .into_iter()
        .map(|c| metrics.gauge_with("trace_dropped_records", &[("component", c)]))
        .sum();
    assert!(total > 0, "six sim-hours must overflow at least one 4096-record trace ring");
    // The gauge must agree with the rings' own drop counters.
    let expected = system.btc().obs().trace.dropped()
        + system.subnet().obs().trace.dropped()
        + system.canister().obs().trace.dropped();
    assert!(
        total as u64 >= expected,
        "merged gauge ({total}) must cover the visible components' drops ({expected})"
    );

    // A short run drops nothing and still exposes the gauge (at zero).
    let fresh = run(7, 10);
    let fresh_metrics = fresh.merged_metrics();
    assert_eq!(fresh_metrics.gauge_with("trace_dropped_records", &[("component", "btcnet")]), 0);
}

//! Differential and property tests of the paged UTXO storage engine.
//!
//! The previous `UtxoSet` was a pair of in-heap `BTreeMap`s. This suite
//! keeps that shape alive as an *oracle*: random mainnet-shaped chains —
//! including BIP30-style duplicate coinbases that recreate an existing
//! outpoint — are ingested into both the paged engine and the oracle,
//! and every observable query (`len`, `get`, `balance`, `utxos_of`,
//! `utxos_after` pagination) must agree at every block boundary. A
//! second property pins the upgrade path: two same-seed runs must
//! produce byte-identical snapshots and equal state hashes.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use icbtc::canister::{StorageConfig, StorageError, UtxoSet};
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc_bitcoin::{
    Address, AddressKind, Amount, Network, OutPoint, Transaction, TxIn, TxOut,
};
use icbtc_sim::{testkit, SimRng};

/// Number of distinct addresses in play: small enough that duplicate
/// coinbase transactions (identical txid, hence duplicate outpoints)
/// occur naturally within a run.
const ADDRESSES: u8 = 6;

fn addr(n: u8) -> Address {
    Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
}

/// The old in-heap implementation, reduced to its observable semantics:
/// one entry per live outpoint, addresses resolved from the script. The
/// address index is derived on demand, which bakes in the *correct*
/// duplicate-outpoint behaviour (the stale entry cannot survive, because
/// there is nothing to go stale).
#[derive(Default)]
struct Oracle {
    live: BTreeMap<([u8; 32], u32), (u64, u64, Address)>,
}

impl Oracle {
    fn ingest_block(&mut self, txs: &[Transaction], height: u64) {
        for tx in txs {
            for input in &tx.inputs {
                if input.previous_output != OutPoint::NULL {
                    let key = (input.previous_output.txid.to_bytes(), input.previous_output.vout);
                    self.live.remove(&key);
                }
            }
            let txid = tx.txid().to_bytes();
            for (vout, output) in tx.outputs.iter().enumerate() {
                if let Some(address) = Address::from_script(&output.script_pubkey, Network::Regtest)
                {
                    self.live
                        .insert((txid, vout as u32), (height, output.value.to_sat(), address));
                }
            }
        }
    }

    fn balance(&self, address: &Address) -> Amount {
        self.live
            .values()
            .filter(|(_, _, a)| a == address)
            .fold(Amount::ZERO, |acc, (_, sats, _)| {
                acc.saturating_add(Amount::from_sat(*sats))
            })
    }

    /// Live UTXOs of `address` in the engine's pagination order:
    /// height descending, then outpoint ascending.
    fn utxos_of(&self, address: &Address) -> Vec<(u64, OutPoint, u64)> {
        let mut utxos: Vec<(u64, OutPoint, u64)> = self
            .live
            .iter()
            .filter(|(_, (_, _, a))| a == address)
            .map(|((txid, vout), (height, sats, _))| {
                (*height, OutPoint::new(icbtc_bitcoin::Txid(*txid), *vout), *sats)
            })
            .collect();
        utxos.sort_by_key(|(height, outpoint, _)| {
            (Reverse(*height), outpoint.txid.to_bytes(), outpoint.vout)
        });
        utxos
    }
}

/// One random block: a coinbase paying 1–3 outputs (values drawn from a
/// tiny range so identical coinbases — and therefore duplicate outpoints
/// — recur), plus spends of up to a third of the currently live set.
fn random_block(rng: &mut SimRng, oracle: &Oracle) -> Vec<Transaction> {
    let coinbase_outputs = testkit::vec_with(rng, 1..4, |rng| {
        TxOut::new(
            Amount::from_sat(testkit::u64_in(rng, 1_000..1_008)),
            addr(rng.below(ADDRESSES as u64) as u8).script_pubkey(),
        )
    });
    let mut txs = vec![Transaction {
        version: 2,
        inputs: vec![TxIn::new(OutPoint::NULL)],
        outputs: coinbase_outputs,
        lock_time: 0,
    }];

    let mut spendable: Vec<OutPoint> = oracle
        .live
        .keys()
        .map(|(txid, vout)| OutPoint::new(icbtc_bitcoin::Txid(*txid), *vout))
        .collect();
    let spends = rng.below(1 + spendable.len() as u64 / 3) as usize;
    for _ in 0..spends {
        let victim = spendable.swap_remove(rng.index(spendable.len()));
        txs.push(Transaction {
            version: 2,
            inputs: vec![TxIn::new(victim)],
            outputs: testkit::vec_with(rng, 1..3, |rng| {
                TxOut::new(
                    Amount::from_sat(testkit::u64_in(rng, 1..500)),
                    addr(rng.below(ADDRESSES as u64) as u8).script_pubkey(),
                )
            }),
            lock_time: 0,
        });
    }
    txs
}

fn assert_engine_matches_oracle(set: &UtxoSet, oracle: &Oracle, context: &str) {
    assert_eq!(set.len(), oracle.live.len(), "{context}: len diverged");
    for n in 0..ADDRESSES {
        let address = addr(n);
        let expected = oracle.utxos_of(&address);

        assert_eq!(
            set.balance(&address, &mut Meter::new()),
            oracle.balance(&address),
            "{context}: balance({n}) diverged"
        );

        let got = set.utxos_of(&address, &mut Meter::new());
        assert_eq!(got.len(), expected.len(), "{context}: utxos_of({n}) length diverged");
        for (utxo, (height, outpoint, sats)) in got.iter().zip(&expected) {
            assert_eq!((utxo.height, utxo.outpoint), (*height, *outpoint), "{context}");
            assert_eq!(utxo.value, Amount::from_sat(*sats), "{context}");
            // Cross-check the primary map against the index walk.
            let stored = set.get(outpoint).expect("indexed UTXO missing from by_outpoint");
            assert_eq!(stored.height, *height, "{context}");
            assert_eq!(stored.value, Amount::from_sat(*sats), "{context}");
        }

        // Pagination: resuming from any cursor yields exactly the suffix.
        if !expected.is_empty() {
            let at = expected.len() / 2;
            let cursor = (expected[at].0, expected[at].1);
            let rest: Vec<(u64, OutPoint)> = set
                .utxos_after(&address, Some(cursor))
                .map(|u| (u.height, u.outpoint))
                .collect();
            let want: Vec<(u64, OutPoint)> =
                expected[at + 1..].iter().map(|(h, o, _)| (*h, *o)).collect();
            assert_eq!(rest, want, "{context}: pagination for address {n} diverged");
        }
    }
}

#[test]
fn engine_matches_the_in_heap_oracle_on_random_chains() {
    testkit::check(0x5704A6E, 24, |rng| {
        let mut set = UtxoSet::with_config(
            Network::Regtest,
            StorageConfig { page_size: 1024, byte_budget: 8 << 20 },
        );
        let mut oracle = Oracle::default();
        let mut meter = Meter::new();
        let mut breakdown = MeterBreakdown::new();

        let blocks = testkit::u64_in(rng, 8..28);
        for height in 0..blocks {
            let txs = random_block(rng, &oracle);
            oracle.ingest_block(&txs, height);
            set.try_ingest_block(&txs, height, &mut meter, &mut breakdown)
                .expect("8 MiB budget must fit this workload");
            assert_engine_matches_oracle(&set, &oracle, &format!("height {height}"));
        }

        // The snapshot round-trip preserves every observable too.
        let restored = UtxoSet::deserialize(&set.serialize()).expect("snapshot must round-trip");
        assert_engine_matches_oracle(&restored, &oracle, "after deserialize");
        assert_eq!(restored.state_hash(), set.state_hash());
    });
}

#[test]
fn same_seed_runs_serialize_byte_identically() {
    for seed in [1u64, 7, 42] {
        let build = || {
            let mut rng = SimRng::seed_from(seed);
            let mut set = UtxoSet::with_config(
                Network::Regtest,
                StorageConfig { page_size: 2048, byte_budget: 8 << 20 },
            );
            let mut oracle = Oracle::default();
            for height in 0..20 {
                let txs = random_block(&mut rng, &oracle);
                oracle.ingest_block(&txs, height);
                set.try_ingest_block(&txs, height, &mut Meter::new(), &mut MeterBreakdown::new())
                    .expect("budget");
            }
            set
        };
        let (a, b) = (build(), build());
        assert_eq!(a.serialize(), b.serialize(), "seed {seed}: snapshot bytes diverged");
        assert_eq!(a.state_hash(), b.state_hash(), "seed {seed}: state hash diverged");
    }
}

#[test]
fn budget_bounded_ingest_fails_loudly_and_deterministically() {
    let run = || {
        let mut set = UtxoSet::with_config(
            Network::Regtest,
            StorageConfig { page_size: 1024, byte_budget: 96 << 10 },
        );
        let mut rng = SimRng::seed_from(99);
        let mut oracle = Oracle::default();
        for height in 0..10_000 {
            let txs = random_block(&mut rng, &oracle);
            oracle.ingest_block(&txs, height);
            if let Err(error) =
                set.try_ingest_block(&txs, height, &mut Meter::new(), &mut MeterBreakdown::new())
            {
                assert!(
                    matches!(error, StorageError::BudgetExhausted { .. }),
                    "expected BudgetExhausted, got {error}"
                );
                return (height, set.storage_stats().bytes_reserved);
            }
        }
        panic!("a 96 KiB budget must fill up within 10k blocks");
    };
    let (first, bytes) = run();
    assert!(first > 0, "at least one block must fit");
    assert!(bytes <= 96 << 10, "reservations must never exceed the budget");
    // The failure point is a pure function of the seed.
    assert_eq!(run(), (first, bytes));
}

#[test]
fn duplicate_txid_across_blocks_is_consistent_end_to_end() {
    // The BIP30 scenario at the integration level: the *identical*
    // coinbase transaction appears in two blocks, recreating its
    // outpoint. The engine must agree with the oracle afterwards (one
    // live UTXO at the later height, single-counted balance) and the
    // recreated output must still be cleanly spendable.
    let mut set = UtxoSet::new(Network::Regtest);
    let mut oracle = Oracle::default();
    let coinbase = Transaction {
        version: 2,
        inputs: vec![TxIn::new(OutPoint::NULL)],
        outputs: vec![TxOut::new(Amount::from_sat(50_000), addr(3).script_pubkey())],
        lock_time: 0,
    };
    for height in [0u64, 1] {
        oracle.ingest_block(std::slice::from_ref(&coinbase), height);
        set.ingest_block(
            std::slice::from_ref(&coinbase),
            height,
            &mut Meter::new(),
            &mut MeterBreakdown::new(),
        );
    }
    assert_engine_matches_oracle(&set, &oracle, "after duplicate coinbase");
    assert_eq!(set.balance(&addr(3), &mut Meter::new()), Amount::from_sat(50_000));

    let spend = Transaction {
        version: 2,
        inputs: vec![TxIn::new(OutPoint::new(coinbase.txid(), 0))],
        outputs: vec![TxOut::new(Amount::from_sat(49_000), addr(4).script_pubkey())],
        lock_time: 0,
    };
    oracle.ingest_block(std::slice::from_ref(&spend), 2);
    set.ingest_block(std::slice::from_ref(&spend), 2, &mut Meter::new(), &mut MeterBreakdown::new());
    assert_engine_matches_oracle(&set, &oracle, "after spending the recreated outpoint");
    assert_eq!(set.balance(&addr(3), &mut Meter::new()), Amount::ZERO);
}

//! Integration tests for the threshold-Schnorr taproot path and the
//! `get_block_headers` endpoint.

use icbtc::canister::{ApiError, CanisterCall, CanisterReply};
use icbtc::contracts::{verify_p2tr_key_spend, TaprootWallet, Wallet};
use icbtc::system::{System, SystemConfig};
use icbtc_bitcoin::{Amount, Script};
use icbtc_btcnet::NodeId;
use icbtc_sim::SimTime;

fn booted(seed: u64) -> System {
    let mut system = System::new(SystemConfig::regtest(seed));
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(6000), "initial sync failed");
    system
}

#[test]
fn taproot_wallet_full_lifecycle() {
    let mut system = booted(200);
    let wallet = TaprootWallet::new("vault");
    let address = wallet.address(&system);
    assert!(address.to_string().starts_with("bcrt1p"), "bech32m P2TR address");

    system.fund_address(&address, 2);
    assert!(system.sync_canister(6000));
    let subsidy = icbtc_bitcoin::Network::Regtest.params().block_subsidy;
    assert_eq!(wallet.balance(&mut system, 0).unwrap().to_sat(), 2 * subsidy.to_sat());

    // Spend by key path with a threshold Schnorr signature.
    let recipient = Wallet::new("segwit-recipient");
    let recipient_address = recipient.address(&system);
    let txid = wallet
        .transfer(&mut system, &recipient_address, Amount::from_btc_int(5), Amount::from_sat(800))
        .unwrap();
    let height = system.await_transaction_mined(txid, 800).expect("taproot spend mined");
    assert!(height > 0);
    assert!(system.sync_canister(6000));
    assert_eq!(recipient.balance(&mut system, 0).unwrap(), Amount::from_btc_int(5));
    // Change returned to the taproot wallet.
    let change = wallet.balance(&mut system, 0).unwrap();
    assert_eq!(change.to_sat(), 2 * subsidy.to_sat() - Amount::from_btc_int(5).to_sat() - 800);
}

#[test]
fn taproot_signatures_verify_as_bip341_key_spends() {
    let mut system = booted(201);
    let wallet = TaprootWallet::new("verifier");
    let address = wallet.address(&system);
    system.fund_address(&address, 1);
    assert!(system.sync_canister(6000));

    let x_address = Wallet::new("x").address(&system);
    let txid = wallet
        .transfer(&mut system, &x_address, Amount::from_btc_int(1), Amount::from_sat(500))
        .unwrap();
    // Dig the submitted transaction out of the mempool/blocks.
    system.await_transaction_mined(txid, 800).expect("mined");
    let chain = system.btc().node(NodeId(0)).chain().clone();
    let tx = chain
        .best_chain_hashes()
        .iter()
        .filter_map(|h| chain.block(h))
        .flat_map(|b| b.txdata.iter())
        .find(|t| t.txid() == txid)
        .cloned()
        .expect("transaction on chain");

    let spent: Vec<(Amount, Script)> = tx
        .inputs
        .iter()
        .map(|_| {
            // The single funded coinbase output: subsidy to our P2TR.
            (
                icbtc_bitcoin::Network::Regtest.params().block_subsidy,
                address.script_pubkey(),
            )
        })
        .collect();
    assert!(verify_p2tr_key_spend(&tx, &spent), "BIP-341 verification must pass");

    // Tampering breaks it.
    let mut tampered = tx.clone();
    tampered.outputs[0].value = Amount::from_sat(tx.outputs[0].value.to_sat() - 1);
    assert!(!verify_p2tr_key_spend(&tampered, &spent));
}

#[test]
fn taproot_and_segwit_wallets_have_unrelated_keys() {
    let system = System::new(SystemConfig::regtest(202));
    let segwit = Wallet::new("same-label");
    let taproot = TaprootWallet::new("same-label");
    // Different derivation namespaces: no key reuse across schemes.
    assert_ne!(segwit.path(), taproot.path());
    assert_ne!(
        segwit.address(&system).script_pubkey(),
        taproot.address(&system).script_pubkey()
    );
}

#[test]
fn get_block_headers_spans_stable_and_unstable() {
    let mut system = booted(203);
    for _ in 0..4 {
        system.btc_mut().mine_block_paying(NodeId(0), Script::new_op_return(b"h"));
    }
    assert!(system.sync_canister(6000));
    let (_, tip) = system.canister().state().best_tip();
    assert!(tip >= 5);

    let outcome = system.query(CanisterCall::GetBlockHeaders { start_height: 0, end_height: tip });
    let Ok(CanisterReply::BlockHeaders(response)) = outcome.outcome.reply else {
        panic!("header query failed: {:?}", outcome.outcome.reply);
    };
    assert_eq!(response.tip_height, tip);
    assert_eq!(response.headers.len() as u64, tip + 1);
    // Headers chain correctly and match the real network's best chain.
    for pair in response.headers.windows(2) {
        assert_eq!(pair[1].prev_blockhash, pair[0].block_hash());
    }
    let chain = system.btc().node(NodeId(0)).chain().clone();
    for (height, header) in response.headers.iter().enumerate() {
        assert_eq!(
            chain.best_chain_hash_at(height as u64),
            Some(header.block_hash()),
            "height {height}"
        );
    }

    // Clamping and errors.
    let clamped =
        system.query(CanisterCall::GetBlockHeaders { start_height: tip, end_height: tip + 50 });
    let Ok(CanisterReply::BlockHeaders(clamped)) = clamped.outcome.reply else {
        panic!("clamped query failed");
    };
    assert_eq!(clamped.headers.len(), 1);

    let inverted =
        system.query(CanisterCall::GetBlockHeaders { start_height: 5, end_height: 2 });
    assert_eq!(inverted.outcome.reply, Err(ApiError::MalformedPage));
    let beyond = system
        .query(CanisterCall::GetBlockHeaders { start_height: tip + 10, end_height: tip + 20 });
    assert_eq!(beyond.outcome.reply, Err(ApiError::MalformedPage));
}

#[test]
fn schnorr_threshold_signature_through_system() {
    let mut system = booted(204);
    let path = icbtc::tecdsa::protocol::DerivationPath::new([b"schnorr-test".to_vec()]);
    let message = [0x5au8; 32];
    let (signature, pubkey_x) = system.sign_with_schnorr(&path, message);
    assert!(icbtc::tecdsa::schnorr::verify(&pubkey_x, &message, &signature));
    assert!(!icbtc::tecdsa::schnorr::verify(&pubkey_x, &[0u8; 32], &signature));
}

//! Property-style invariants of Algorithms 1 and 2 driven through the
//! full stack, plus the manual-upgrade path the paper prescribes for
//! reorganizations deeper than the anchor (§III-C).

use icbtc::adapter::BitcoinAdapter;
use icbtc::btcnet::network::{BtcNetwork, NetworkConfig};
use icbtc::btcnet::NodeId;
use icbtc::canister::{BitcoinCanisterState, UtxoSet};
use icbtc::core::{IntegrationParams, MAX_NEXT_HEADERS};
use icbtc::ic::{Meter, MeterBreakdown};
use icbtc_bitcoin::{BlockHash, Network};
use icbtc_sim::{SimDuration, SimRng, SimTime};

const NOW: u32 = 2_100_000_000;

/// Runs many randomized request/response exchanges and checks, on every
/// single step, the structural invariants both algorithms promise.
#[test]
fn randomized_exchanges_preserve_invariants() {
    for seed in 0..6u64 {
        let mut rng = SimRng::seed_from(seed);
        let mut net = BtcNetwork::new(NetworkConfig::regtest(3), seed);
        net.run_until(SimTime::from_secs(5 * 3600));
        let params = IntegrationParams::for_network(Network::Regtest)
            .with_stability_delta(4)
            .with_connections(2);
        let mut adapter = BitcoinAdapter::new(params, seed);
        let mut state = BitcoinCanisterState::new(params);
        let mut last_anchor = state.anchor_height();

        for _ in 0..120 {
            // Occasionally let the network mine & gossip more.
            if rng.chance(0.3) {
                net.run_until(net.now() + SimDuration::from_secs(300));
            }
            adapter.step(&mut net);
            net.run_until(net.now() + SimDuration::from_secs(2));

            let request = state.make_request();
            // Invariant (request): processed ⊆ unstable region, never the
            // anchor itself.
            assert!(!request.processed.contains(&request.anchor.block_hash()));

            let response = adapter.handle_request(&mut net, &request);

            // Invariant (Algorithm 1): every returned block connects to
            // the anchor, the processed set, or an earlier response block.
            let mut connected: std::collections::HashSet<BlockHash> =
                request.processed.iter().copied().collect();
            connected.insert(request.anchor.block_hash());
            for block in &response.blocks {
                assert!(
                    connected.contains(&block.header.prev_blockhash),
                    "seed {seed}: disconnected block in response"
                );
                connected.insert(block.block_hash());
            }
            // Invariant: no block already processed is re-sent.
            for block in &response.blocks {
                assert!(!request.processed.contains(&block.block_hash()));
            }
            // Invariant: the next-headers cap holds.
            assert!(response.next.len() <= MAX_NEXT_HEADERS);

            state.process_response(response, NOW, &mut Meter::new());

            // Invariant (Algorithm 2): the anchor never regresses, and
            // the tree root is always the anchor.
            assert!(state.anchor_height() >= last_anchor, "anchor regressed");
            last_anchor = state.anchor_height();
            assert_eq!(state.tree().root(), state.anchor().block_hash());
            // Invariant: at most one stable header per height, chained.
            // (Checked implicitly by header_at_height linkage.)
            if state.anchor_height() > 0 {
                let below = state.header_at_height(state.anchor_height() - 1).unwrap();
                assert_eq!(state.anchor().prev_blockhash, below.block_hash());
            }
            // Invariant: unstable block bodies exist only for tree nodes.
            assert!(state.unstable_block_count() < state.tree().len().max(1));
        }
        // The canister must have made real progress.
        assert!(state.best_tip().1 > 0, "seed {seed}: no progress");
    }
}

/// §III-C: "a reorganization at a lower height would require a manual
/// canister upgrade as the UTXO set would need to be updated." Simulate
/// exactly that recovery via `install_snapshot`.
#[test]
fn deep_reorg_recovery_via_canister_upgrade() {
    let mut net = BtcNetwork::new(NetworkConfig::regtest(3), 9);
    net.run_until(SimTime::from_secs(6 * 3600));
    let params = IntegrationParams::for_network(Network::Regtest)
        .with_stability_delta(2) // aggressive δ: reorgs past the anchor possible
        .with_connections(2);
    let mut adapter = BitcoinAdapter::new(params, 9);
    let mut state = BitcoinCanisterState::new(params);
    for _ in 0..200 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(2));
        let request = state.make_request();
        let response = adapter.handle_request(&mut net, &request);
        let done = response.is_empty();
        state.process_response(response, NOW, &mut Meter::new());
        if done && state.best_tip().1 == net.best_height() {
            break;
        }
    }
    let anchor_before = state.anchor_height();
    assert!(anchor_before > 4, "need a stabilized prefix");

    // A catastrophic fork below the anchor out-works the whole chain.
    let view = net.node(NodeId(0)).chain().clone();
    let branch = view.best_chain_hash_at(anchor_before - 3).unwrap();
    let mut fork = icbtc::btcnet::adversary::SecretForkMiner::branch_at(&view, branch).unwrap();
    let needed = (view.tip_height() - (anchor_before - 3) + 3) as usize;
    for block in fork.extend(needed, 42) {
        net.submit_block(NodeId(0), block);
    }
    assert_eq!(net.node(NodeId(0)).chain().tip_hash(), fork.tip(), "fork must win");

    // The live canister cannot follow: the fork branches below its
    // anchor, so Algorithm 1's BFS from the anchor never reaches the new
    // chain — the canister is stuck on the orphaned branch.
    let stuck_tip = state.best_tip();
    for _ in 0..30 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(2));
        let request = state.make_request();
        let response = adapter.handle_request(&mut net, &request);
        state.process_response(response, NOW, &mut Meter::new());
    }
    assert_eq!(state.best_tip(), stuck_tip, "live canister must be stuck");
    let authoritative_now = net.node(NodeId(0)).chain().clone();
    assert_ne!(
        authoritative_now.best_chain_hash_at(stuck_tip.1),
        Some(stuck_tip.0),
        "the canister's tip is no longer on the authoritative chain"
    );

    // Manual upgrade: rebuild the UTXO set from the (new) authoritative
    // chain and reinstall. In production this is the canister-upgrade
    // path with state recomputed off-chain.
    let authoritative = net.node(NodeId(0)).chain().clone();
    let mut hashes = authoritative.best_chain_hashes();
    hashes.reverse(); // genesis first
    let mut utxos = UtxoSet::new(Network::Regtest);
    let mut headers = Vec::new();
    for (height, hash) in hashes.iter().enumerate() {
        let block = authoritative.block(hash).expect("full node holds bodies");
        utxos.ingest_block(&block.txdata, height as u64, &mut Meter::new(), &mut MeterBreakdown::new());
        headers.push(block.header);
    }
    state.install_snapshot(utxos, headers);
    assert_eq!(state.anchor_height(), authoritative.tip_height());
    // The new anchor is the authoritative tip (the Poisson process may
    // have extended the fork chain since we mined it).
    assert_eq!(
        Some(state.anchor().block_hash()),
        authoritative.best_chain_hash_at(authoritative.tip_height())
    );

    // After the upgrade the canister tracks the new chain normally.
    net.run_until(net.now() + SimDuration::from_secs(600)); // let Poisson mine
    for _ in 0..200 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(2));
        let request = state.make_request();
        let response = adapter.handle_request(&mut net, &request);
        let done = response.is_empty();
        state.process_response(response, NOW, &mut Meter::new());
        if done && state.best_tip().1 >= net.best_height() {
            break;
        }
    }
    assert_eq!(state.best_tip().1, net.best_height(), "post-upgrade tracking");
}

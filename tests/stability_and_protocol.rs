//! Integration tests for the δ-stability machinery and the adapter ⇄
//! canister protocol across crate boundaries: parameter sweeps over δ,
//! the τ sync bound, and the single-block rule above the bulk-sync
//! height.

use icbtc::adapter::BitcoinAdapter;
use icbtc::btcnet::network::{BtcNetwork, NetworkConfig};
use icbtc::btcnet::NodeId;
use icbtc::canister::BitcoinCanisterState;
use icbtc::core::IntegrationParams;
use icbtc::ic::Meter;
use icbtc_bitcoin::Network;
use icbtc_sim::{SimDuration, SimTime};

const NOW: u32 = 2_100_000_000;

/// Drives one adapter against a network until it has synced headers, then
/// pumps request/response cycles into a canister state until quiescent.
fn sync_pair(
    net: &mut BtcNetwork,
    adapter: &mut BitcoinAdapter,
    state: &mut BitcoinCanisterState,
    max_iterations: usize,
) {
    for _ in 0..max_iterations {
        adapter.step(net);
        net.run_until(net.now() + SimDuration::from_secs(3));
        let request = state.make_request();
        let response = adapter.handle_request(net, &request);
        let quiescent = response.is_empty();
        state.process_response(response, NOW, &mut Meter::new());
        if quiescent && state.is_synced() && adapter.best_header_height() == net.best_height() {
            return;
        }
    }
}

fn grown_network(nodes: usize, hours: u64, seed: u64) -> BtcNetwork {
    let mut net = BtcNetwork::new(NetworkConfig::regtest(nodes), seed);
    net.run_until(SimTime::from_secs(hours * 3600));
    net
}

#[test]
fn delta_sweep_controls_anchor_lag() {
    // Larger δ ⇒ anchor trails further behind ⇒ more unstable blocks to
    // scan per query: the paper's security/cost trade-off (§III-C).
    let mut lags = Vec::new();
    for delta in [2u64, 4, 8] {
        let mut net = grown_network(3, 5, 400 + delta);
        let params = IntegrationParams::for_network(Network::Regtest)
            .with_stability_delta(delta)
            .with_connections(2);
        let mut adapter = BitcoinAdapter::new(params, delta);
        let mut state = BitcoinCanisterState::new(params);
        sync_pair(&mut net, &mut adapter, &mut state, 300);
        let (_, tip) = state.best_tip();
        assert_eq!(tip, net.best_height(), "delta {delta} tip");
        let lag = tip - state.anchor_height();
        assert!(lag >= delta - 1, "delta {delta}: lag {lag}");
        lags.push(lag);
    }
    assert!(lags[0] < lags[2], "larger delta must increase the anchor lag: {lags:?}");
}

#[test]
fn single_block_mode_still_syncs_completely() {
    // With bulk_sync_height = 0, the adapter returns one block per
    // request (the Lemma IV.3 safeguard) — sync is slower in rounds but
    // converges to the same state.
    let mut net = grown_network(3, 4, 500);
    let params = IntegrationParams::for_network(Network::Regtest)
        .with_bulk_sync_height(0)
        .with_connections(2);
    let mut adapter = BitcoinAdapter::new(params, 1);
    let mut state = BitcoinCanisterState::new(params);

    let mut single_block_responses = 0;
    for _ in 0..2000 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(2));
        let request = state.make_request();
        let response = adapter.handle_request(&mut net, &request);
        assert!(response.blocks.len() <= 1, "single-block rule violated");
        if response.blocks.len() == 1 {
            single_block_responses += 1;
        }
        let done = response.is_empty();
        state.process_response(response, NOW, &mut Meter::new());
        if done && state.best_tip().1 == net.best_height() {
            break;
        }
    }
    assert_eq!(state.best_tip().1, net.best_height());
    assert!(single_block_responses as u64 >= net.best_height());
}

#[test]
fn tau_gate_blocks_api_until_blocks_arrive() {
    // Feed the canister a burst of headers without bodies: it must flip
    // to unsynced (max header height − max block height > τ) and recover
    // once bodies arrive.
    let mut net = grown_network(3, 4, 600);
    let params = IntegrationParams::for_network(Network::Regtest).with_connections(2);
    let mut adapter = BitcoinAdapter::new(params, 2);
    let mut state = BitcoinCanisterState::new(params);

    // Sync the adapter's headers only.
    for _ in 0..120 {
        adapter.step(&mut net);
        net.run_until(net.now() + SimDuration::from_secs(3));
        if adapter.best_header_height() == net.best_height() {
            break;
        }
    }
    assert_eq!(adapter.best_header_height(), net.best_height());
    assert!(net.best_height() > params.tau + 2, "need a chain longer than tau");

    // First request: mostly headers (blocks still being fetched).
    let request = state.make_request();
    let response = adapter.handle_request(&mut net, &request);
    let header_only = response.blocks.is_empty() && !response.next.is_empty();
    state.process_response(response, NOW, &mut Meter::new());
    if header_only {
        assert!(!state.is_synced(), "header burst beyond tau must unsync the canister");
    }

    // Keep pumping until bodies arrive.
    sync_pair(&mut net, &mut adapter, &mut state, 400);
    assert!(state.is_synced());
    assert_eq!(state.best_tip().1, net.best_height());
}

#[test]
fn canister_handles_reorg_within_unstable_region() {
    // A fork that overtakes the current best chain inside the unstable
    // window is adopted automatically (§III-C: reorganizations above the
    // anchor need no intervention).
    let mut net = grown_network(3, 3, 700);
    let params = IntegrationParams::for_network(Network::Regtest)
        .with_stability_delta(20) // keep everything unstable
        .with_connections(2);
    let mut adapter = BitcoinAdapter::new(params, 3);
    let mut state = BitcoinCanisterState::new(params);
    sync_pair(&mut net, &mut adapter, &mut state, 300);
    let (tip_before, height_before) = state.best_tip();

    // Build a longer fork from 2 blocks back and inject it.
    let view = net.node(NodeId(0)).chain().clone();
    let branch = view.best_chain_hash_at(view.tip_height() - 2).unwrap();
    let mut fork = icbtc::btcnet::adversary::SecretForkMiner::branch_at(&view, branch).unwrap();
    for block in fork.extend(4, 9) {
        net.submit_block(NodeId(0), block);
    }
    sync_pair(&mut net, &mut adapter, &mut state, 400);

    let (tip_after, height_after) = state.best_tip();
    assert!(height_after >= height_before + 2, "{height_before} -> {height_after}");
    assert_ne!(tip_before, tip_after);
    assert_eq!(tip_after, fork.tip(), "canister adopted the heavier fork");
}

#[test]
fn adapters_on_different_replicas_converge() {
    // All 4 adapters of a (mini) subnet see the same chain even though
    // they connect to different Bitcoin nodes.
    let mut net = grown_network(8, 4, 800);
    let params = IntegrationParams::for_network(Network::Regtest).with_connections(2);
    let mut adapters: Vec<BitcoinAdapter> =
        (0..4).map(|i| BitcoinAdapter::new(params, 900 + i)).collect();
    for _ in 0..150 {
        for adapter in &mut adapters {
            adapter.step(&mut net);
        }
        net.run_until(net.now() + SimDuration::from_secs(3));
        if adapters.iter().all(|a| a.best_header_height() == net.best_height()) {
            break;
        }
    }
    for (i, adapter) in adapters.iter().enumerate() {
        assert_eq!(
            adapter.best_header_height(),
            net.best_height(),
            "adapter {i} lagging"
        );
    }
}

#[test]
fn mainnet_parameters_instantiate() {
    // The production parameter set wires up (δ = 144 means the anchor
    // never moves on a short test chain — that itself is the check).
    let mut net = BtcNetwork::new(NetworkConfig::mainnet(4), 1000);
    net.run_until(SimTime::from_secs(4 * 3600));
    let params = IntegrationParams::for_network(Network::Mainnet).with_connections(3);
    let mut adapter = BitcoinAdapter::new(params, 5);
    let mut state = BitcoinCanisterState::new(params);
    sync_pair(&mut net, &mut adapter, &mut state, 400);
    assert_eq!(state.best_tip().1, net.best_height());
    assert_eq!(state.anchor_height(), 0, "δ=144 keeps genesis anchored on a short chain");
    assert!(state.unstable_block_count() as u64 >= net.best_height());
}

//! Durability and recovery soak suite: canister upgrades mid-ingest,
//! replica crash–catch-up at every checkpoint phase, equivalence of
//! recovered and never-crashed runs, same-seed byte-identity of whole
//! lifecycles, and the shadow-replica divergence detector.

use icbtc::canister::{BitcoinCanister, CanisterCall, CanisterReply};
use icbtc::ic::LifecyclePlan;
use icbtc::system::{System, SystemConfig};
use icbtc_bitcoin::{Address, AddressKind, Network};
use icbtc_sim::SimTime;

/// A regtest system with an hour of pre-mined chain, mid-sync — the
/// worst moment for a lifecycle event to land.
fn booted_system(seed: u64) -> System {
    let mut system = System::new(SystemConfig::regtest(seed));
    system.btc_mut().run_until(SimTime::from_secs(3600));
    system
}

fn balance_call() -> CanisterCall {
    let address = Address::new(Network::Regtest, AddressKind::P2wpkh([7; 20]));
    CanisterCall::GetBalance { address, min_confirmations: 0 }
}

/// The full-state checkpoint envelope survives a round trip at an
/// arbitrary mid-sync point, and the canister keeps working afterwards.
#[test]
fn upgrade_mid_ingest_preserves_state_and_keeps_syncing() {
    let mut system = booted_system(101);
    system.run_rounds(12); // mid-ingest: some blocks in, not synced
    let before = system.canister().state_hash();
    let report = system.upgrade_canister();
    assert!(report.state_hash_preserved);
    assert!(report.checkpoint_bytes > 0);
    assert_eq!(system.canister().state_hash(), before);
    // The upgraded canister still syncs to the network tip.
    assert!(system.sync_canister(4000), "post-upgrade canister must catch up");
}

/// Upgrades scheduled by a lifecycle plan are state-preserving, and a
/// run with upgrades converges on the same replicated state as the same
/// seed run without any.
#[test]
fn upgrades_do_not_change_the_replicated_trajectory() {
    let run = |plan: LifecyclePlan| {
        let mut system = booted_system(202);
        system.set_lifecycle_plan(plan);
        system.run_rounds(60);
        (system.canister().state_hash(), system.recovery_stats().clone())
    };
    let (plain_hash, plain_stats) = run(LifecyclePlan::none());
    let (upgraded_hash, upgraded_stats) = run(LifecyclePlan::builtin("upgrades").unwrap());
    assert_eq!(upgraded_stats.upgrades, 3, "all planned upgrades fired");
    assert_eq!(plain_stats.upgrades, 0);
    assert_eq!(
        upgraded_hash, plain_hash,
        "upgrades must not perturb the replicated state trajectory"
    );
}

/// Crash catch-up reconverges with the live replica at *every* round of
/// the checkpoint cycle: freshly checkpointed, mid-cycle, and the round
/// just before the next checkpoint.
#[test]
fn crash_catchup_reconverges_at_every_checkpoint_phase() {
    let mut system = booted_system(303);
    let plan = LifecyclePlan {
        checkpoint_every: 5,
        // One crash at each phase of the 5-round cycle.
        crashes: vec![10, 11, 12, 13, 14],
        ..LifecyclePlan::default()
    };
    system.set_lifecycle_plan(plan);
    system.run_rounds(20);
    let stats = system.recovery_stats();
    assert_eq!(stats.catchups, 5);
    assert_eq!(stats.catchup_matches, 5, "every catch-up must reconverge");
    // Phase 0 (round 10) replays nothing; phase 4 (round 14) replays 4.
    assert_eq!(stats.replayed_rounds_total, 1 + 2 + 3 + 4);
    assert_eq!(stats.replayed_rounds_max, 4);
    assert!(stats.mttr_ns_total > 0, "restore cost alone must yield nonzero MTTR");
}

/// A recovered replica's state hash equals a never-crashed same-seed
/// run's, even with replicated calls in the replayed ingress log.
#[test]
fn catchup_equivalence_with_ingress_traffic() {
    let run = |crashes: Vec<u64>| {
        let mut system = booted_system(404);
        system.set_lifecycle_plan(LifecyclePlan {
            checkpoint_every: 8,
            crashes,
            ..LifecyclePlan::default()
        });
        // Interleave replicated calls so the journal is non-trivial.
        for i in 0..30u64 {
            if i % 7 == 3 {
                let outcome = system.replicated(balance_call());
                assert!(matches!(outcome.outcome.reply, Ok(CanisterReply::Balance(_))));
            } else {
                system.step_round();
            }
        }
        (system.canister().state_hash(), system.recovery_stats().clone())
    };
    let (plain_hash, _) = run(vec![]);
    let (crashed_hash, stats) = run(vec![11, 19, 27]);
    assert_eq!(stats.catchups, 3);
    assert_eq!(stats.catchup_matches, 3, "replayed ingress must reconverge");
    assert_eq!(crashed_hash, plain_hash);
}

/// The whole lifecycle — checkpoints, upgrades, crashes, corruption,
/// divergence detection — is byte-identical across same-seed runs.
#[test]
fn same_seed_lifecycles_are_byte_identical() {
    let run = |seed: u64| {
        let mut system = booted_system(seed);
        system.set_lifecycle_plan(LifecyclePlan::builtin("mixed").unwrap());
        system.run_rounds(60);
        let metrics = system.merged_metrics().snapshot_json();
        (system.canister().state_hash(), system.recovery_stats().clone(), metrics)
    };
    let a = run(505);
    let b = run(505);
    assert_eq!(a.0, b.0, "state hash must be seed-deterministic");
    assert_eq!(a.1, b.1, "recovery stats must be seed-deterministic");
    assert_eq!(a.2, b.2, "merged metrics must be byte-identical");
    let c = run(506);
    assert_ne!(a.0, c.0, "different seeds must diverge");
}

/// The shadow replica tracks the live canister exactly (no false
/// positives), fires on every injected corruption, and re-arms after
/// each detection.
#[test]
fn shadow_detector_fires_exactly_on_injected_corruption() {
    // Clean run: shadow on, no corruption — zero detections.
    let mut clean = booted_system(606);
    clean.set_lifecycle_plan(LifecyclePlan {
        checkpoint_every: 10,
        shadow: true,
        ..LifecyclePlan::default()
    });
    clean.run_rounds(40);
    let stats = clean.recovery_stats();
    assert_eq!(stats.divergence_checks, 40, "one check per round");
    assert_eq!(stats.divergence_detected, 0, "no false positives");
    assert_eq!(clean.shadow_state_hash(), Some(clean.canister().state_hash()));

    // Corrupted run: every injection is detected, exactly once each.
    let mut corrupted = booted_system(606);
    corrupted.set_lifecycle_plan(LifecyclePlan::builtin("corruption").unwrap());
    corrupted.run_rounds(60);
    let stats = corrupted.recovery_stats();
    assert_eq!(stats.corruptions_injected, 2);
    assert_eq!(
        stats.divergence_detected, stats.corruptions_injected,
        "each corruption detected exactly once — detector re-arms after resync"
    );
    let snapshot = corrupted.merged_metrics().snapshot_json();
    assert!(snapshot.contains("ic_divergence_detected_total"));
    assert!(snapshot.contains("ic_divergence_checks_total"));
    // After the final resync the shadow agrees with the live replica
    // again.
    assert_eq!(corrupted.shadow_state_hash(), Some(corrupted.canister().state_hash()));
}

/// Regression: the query cache must never serve a pre-upgrade reply
/// after a restore, even when the tip has not moved. The restore drops
/// node-local state wholesale, so the first post-upgrade query is a
/// recomputation, not a cache hit.
#[test]
fn post_restore_query_cache_never_serves_stale_replies() {
    let mut system = booted_system(707);
    assert!(system.sync_canister(4000));
    let call = balance_call();
    // Prime the cache and take the baseline reply at this tip.
    let before = system.query_cached(call.clone());
    let primed = system.query_cached(call.clone());
    assert_eq!(before.outcome.reply, primed.outcome.reply);
    assert!(
        primed.instructions < before.instructions,
        "second query at unchanged tip must be a cache hit"
    );
    assert!(!system.canister().query_cache().is_empty());

    let report = system.upgrade_canister();
    assert!(report.state_hash_preserved);
    // The upgrade dropped the cache: nothing to serve from.
    assert_eq!(system.canister().query_cache().len(), 0, "upgrade must drop the query cache");
    let after = system.query_cached(call.clone());
    assert_eq!(after.outcome.reply, before.outcome.reply, "same tip, same answer");
    assert!(
        after.instructions >= before.instructions,
        "first post-upgrade query must recompute, not hit a stale cache"
    );
    // And the cache works again afterwards.
    let warm = system.query_cached(call);
    assert!(warm.instructions < after.instructions);
}

/// Regression: a duplicate adapter response redelivered after recovery
/// is a metered no-op — dropped, counted, and invisible to the
/// replicated Bitcoin state. This is exactly what a restarted replica's
/// adapter does when its last response raced the crash.
#[test]
fn duplicate_response_after_recovery_is_dropped() {
    use icbtc::adapter::BitcoinAdapter;
    use icbtc::btcnet::network::{BtcNetwork, NetworkConfig};
    use icbtc::core::IntegrationParams;
    use icbtc::ic::{ExecutionContext, Meter};

    let mut net = BtcNetwork::new(NetworkConfig::regtest(3), 808);
    net.run_until(SimTime::from_secs(2 * 3600));
    let params = IntegrationParams::for_network(Network::Regtest);
    let mut adapter = BitcoinAdapter::new(params, 808);
    let mut canister = BitcoinCanister::new(params);

    // Let the adapter sync until it can serve a non-empty response.
    let mut response = icbtc::core::GetSuccessorsResponse::default();
    for _ in 0..200 {
        adapter.step(&mut net);
        net.run_until(net.now() + icbtc_sim::SimDuration::from_secs(5));
        let request = canister.state_mut().make_request();
        response = adapter.handle_request(&mut net, &request);
        if !response.blocks.is_empty() || !response.next.is_empty() {
            break;
        }
    }
    assert!(!response.blocks.is_empty() || !response.next.is_empty());
    let now_unix = net.unix_time(net.now());
    let ingest = |canister: &mut BitcoinCanister, response, round| {
        let mut meter = Meter::new();
        let mut ctx = ExecutionContext { meter: &mut meter, now: SimTime::from_secs(round), round };
        canister.ingest_response(response, now_unix, &mut ctx)
    };
    let first = ingest(&mut canister, response.clone(), 1);
    assert!(!first.duplicate_dropped);

    // Crash: restore from the canister's own checkpoint, as a restarted
    // replica would, then redeliver the exact same response.
    let mut recovered =
        BitcoinCanister::restore(&canister.checkpoint_bytes()).expect("valid checkpoint");
    assert_eq!(recovered.state_hash(), canister.state_hash());
    let state_before = recovered.state().state_hash();
    let replayed = ingest(&mut recovered, response, 2);
    assert!(replayed.duplicate_dropped, "redelivered response must be recognized");
    assert_eq!(
        recovered.state().state_hash(),
        state_before,
        "duplicate must not touch replicated Bitcoin state"
    );
    let snapshot = recovered.obs().metrics.snapshot_json();
    assert!(
        snapshot.contains("canister_ingest_duplicate_dropped_total"),
        "drop must be counted: {snapshot}"
    );
}

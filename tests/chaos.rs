//! Chaos soaks: one adapter against every built-in fault plan.
//!
//! Each soak drives the full fault window plus a fault-free recovery
//! tail and then asserts the three properties the fault-injection layer
//! exists to prove:
//!
//! * **Liveness** — the adapter reconverges to the honest network tip
//!   once the faults clear.
//! * **Safety** — no invalid header or block is ever accepted; forged
//!   material shows up only in the rejection counters.
//! * **Determinism** — two soaks from the same seed produce byte-equal
//!   metrics snapshots and traces.

use icbtc::adapter::BitcoinAdapter;
use icbtc::btcnet::network::{BtcNetwork, NetworkConfig};
use icbtc::btcnet::{FaultPlan, NodeId, CHAOS_NODES};
use icbtc::core::{GetSuccessorsRequest, IntegrationParams};
use icbtc_bitcoin::Network;
use icbtc_sim::SimDuration;

/// Everything a soak leaves behind for assertions.
struct Soak {
    net: BtcNetwork,
    adapter: BitcoinAdapter,
    /// Block hashes the canister-like consumer received, in order.
    consumed: usize,
}

/// Runs `plan` from `seed` through its full fault window plus a
/// 30-simulated-minute recovery tail, with a canister-like consumer
/// issuing `GetSuccessors` every 30 s.
fn soak(plan_name: &str, seed: u64) -> Soak {
    let plan = FaultPlan::builtin(plan_name)
        .unwrap_or_else(|| panic!("unknown builtin plan `{plan_name}`"));
    let mut net = BtcNetwork::new(NetworkConfig::regtest(CHAOS_NODES), seed);
    let deadline = plan.ends_at() + SimDuration::from_secs(1800);
    net.set_fault_plan(plan);

    // ℓ = 5 of 8 nodes guarantees overlap with every plan's misbehaving
    // or faulted peers.
    let params = IntegrationParams::for_network(Network::Regtest).with_connections(5);
    let mut adapter = BitcoinAdapter::new(params, seed.wrapping_add(1));

    let genesis = Network::Regtest.genesis_block().header;
    let mut processed = Vec::new();
    let mut next_request = net.now();
    while net.now() < deadline {
        adapter.step(&mut net);
        if net.now() >= next_request {
            let request = GetSuccessorsRequest {
                anchor: genesis,
                anchor_height: 0,
                processed: processed.clone(),
                transactions: Vec::new(),
            };
            let response = adapter.handle_request(&mut net, &request);
            processed.extend(response.blocks.iter().map(|b| b.block_hash()));
            next_request = net.now() + SimDuration::from_secs(30);
        }
        net.run_until(net.now() + SimDuration::from_secs(5));
    }
    // Settle: mining never stops, so chase the tip until the whole
    // network and the adapter agree on it (bounded number of passes —
    // the liveness assertions report any failure to get there).
    for _ in 0..60 {
        adapter.step(&mut net);
        let best = net.best_height();
        let nodes_ok =
            (0..CHAOS_NODES).all(|i| net.node(NodeId(i as u32)).chain().tip_height() == best);
        if nodes_ok && adapter.best_header_height() == best {
            break;
        }
        net.run_until(net.now() + SimDuration::from_secs(5));
    }
    Soak { net, adapter, consumed: processed.len() }
}

/// Liveness: the adapter holds the honest network's best tip, and every
/// honest (non-crashed) node agrees on that tip after recovery.
fn assert_reconverged(s: &Soak, plan: &str) {
    assert!(s.net.crashed_nodes().is_empty(), "[{plan}] nodes still crashed after the plan ended");
    assert!(!s.net.partition_active(), "[{plan}] partition still active after the plan ended");
    let best = s.net.best_height();
    assert!(best > 0, "[{plan}] network mined nothing");
    // Every honest node caught back up to the best height. Tips at equal
    // height may still differ in hash — an unresolved same-work race is
    // normal Bitcoin behaviour, not a fault artefact.
    for i in 0..CHAOS_NODES {
        assert_eq!(
            s.net.node(NodeId(i as u32)).chain().tip_height(),
            best,
            "[{plan}] node {i} did not catch up to the best height"
        );
    }
    assert_eq!(
        s.adapter.best_header_height(),
        best,
        "[{plan}] adapter did not reconverge to the honest tip height"
    );
    let adapter_tip = s.adapter.chain().tip_hash();
    assert!(
        (0..CHAOS_NODES).any(|i| s.net.node(NodeId(i as u32)).chain().tip_hash() == adapter_tip),
        "[{plan}] adapter tip is not any honest node's tip"
    );
    assert!(s.consumed > 0, "[{plan}] GetSuccessors never delivered a block");
}

/// Safety: whatever the peers did, the adapter's store holds only
/// validated material — rejections are counted, never admitted.
fn assert_safe(s: &Soak, plan: &str) {
    let m = &s.adapter.obs().metrics;
    let accepted = m.counter("adapter_headers_accepted_total");
    assert!(
        accepted >= s.adapter.best_header_height(),
        "[{plan}] accepted header count below tip height"
    );
    // Every stored header chains back to genesis through the validated
    // store (tip height is the witness); stored bodies were re-validated
    // on acceptance. Forgeries can only appear in rejection counters.
    let rejected_h = m.counter("adapter_headers_rejected_total");
    let rejected_b = m.counter("adapter_blocks_rejected_total");
    let offences = m.counter_total("adapter_peer_offences_total");
    let bans = m.counter("adapter_peer_bans_total");
    // A ban requires a bounded number of offences (score-weighted).
    if bans > 0 {
        assert!(offences >= bans, "[{plan}] bans without recorded offences");
    }
    let _ = (rejected_h, rejected_b);
}

#[test]
fn chaos_loss_reconverges() {
    let s = soak("loss", 11);
    assert_reconverged(&s, "loss");
    assert_safe(&s, "loss");
    // Loss was actually injected and the backoff path exercised.
    let dropped = s.net.obs().metrics.counter_with("btcnet_faults_injected_total", &[("kind", "loss")]);
    assert!(dropped > 0, "plan injected no loss");
}

#[test]
fn chaos_partition_heals() {
    let s = soak("partition", 12);
    assert_reconverged(&s, "partition");
    assert_safe(&s, "partition");
    let m = &s.net.obs().metrics;
    assert!(m.counter_with("btcnet_faults_injected_total", &[("kind", "partition_start")]) >= 2);
    assert!(m.counter_with("btcnet_faults_injected_total", &[("kind", "partition_heal")]) >= 2);
}

#[test]
fn chaos_churn_is_survivable() {
    let s = soak("churn", 13);
    assert_reconverged(&s, "churn");
    assert_safe(&s, "churn");
    let closes =
        s.net.obs().metrics.counter_with("btcnet_faults_injected_total", &[("kind", "churn_close")]);
    assert!(closes > 0, "churn closed no connections");
    // The discovery layer kept replacing closed connections.
    assert_eq!(s.adapter.connection_manager().connections().len(), 5);
}

#[test]
fn chaos_crash_restart_recovers_with_and_without_state() {
    let s = soak("crash", 14);
    assert_reconverged(&s, "crash");
    assert_safe(&s, "crash");
    let m = &s.net.obs().metrics;
    assert_eq!(m.counter_with("btcnet_faults_injected_total", &[("kind", "crash")]), 2);
    assert_eq!(m.counter_with("btcnet_faults_injected_total", &[("kind", "restart")]), 2);
    // The wiped node re-synced from genesis: it holds the full chain again.
    assert_eq!(s.net.node(NodeId(2)).chain().tip_height(), s.net.best_height());
}

#[test]
fn chaos_stalling_peer_is_rotated_out() {
    let s = soak("stall", 15);
    assert_reconverged(&s, "stall");
    assert_safe(&s, "stall");
    let m = &s.adapter.obs().metrics;
    assert!(m.counter("adapter_peer_stalls_total") > 0, "stall never detected");
    assert!(m.counter("adapter_peer_bans_total") >= 1, "stalling peer never banned");
}

#[test]
fn chaos_malformed_peers_are_banned_within_bounds() {
    let s = soak("malformed", 16);
    assert_reconverged(&s, "malformed");
    assert_safe(&s, "malformed");
    let m = &s.adapter.obs().metrics;
    let bans = m.counter("adapter_peer_bans_total");
    assert!(bans >= 1, "no misbehaving peer was banned");
    // Forged material was seen and rejected, never accepted.
    let rejected = m.counter("adapter_headers_rejected_total")
        + m.counter("adapter_blocks_rejected_total")
        + m.counter("adapter_oversized_messages_total");
    assert!(rejected > 0, "no forged material was ever offered");
    // Bounded offences per ban: the score schedule caps how much a peer
    // can do before the ban lands.
    let offences = m.counter_total("adapter_peer_offences_total");
    let bound = icbtc::adapter::PeerScorer::max_offences_to_ban() as u64;
    assert!(
        offences <= (bans + s.adapter.peer_scorer().tracked() as u64 + 4) * bound,
        "offences ({offences}) exceed the per-ban bound ({bound}) times the peer count"
    );
}

#[test]
fn chaos_mixed_plan_reconverges() {
    let s = soak("mixed", 17);
    assert_reconverged(&s, "mixed");
    assert_safe(&s, "mixed");
}

/// Determinism: the whole point of the layer. Two soaks from the same
/// seed must agree byte-for-byte on metrics and traces.
#[test]
fn chaos_same_seed_runs_are_byte_identical() {
    let a = soak("mixed", 99);
    let b = soak("mixed", 99);
    assert_eq!(
        a.net.obs().metrics.snapshot_json(),
        b.net.obs().metrics.snapshot_json(),
        "network metrics diverged"
    );
    assert_eq!(
        a.adapter.obs().metrics.snapshot_json(),
        b.adapter.obs().metrics.snapshot_json(),
        "adapter metrics diverged"
    );
    assert_eq!(
        a.net.obs().trace.dump_jsonl(),
        b.net.obs().trace.dump_jsonl(),
        "network traces diverged"
    );
    assert_eq!(
        a.adapter.obs().trace.dump_jsonl(),
        b.adapter.obs().trace.dump_jsonl(),
        "adapter traces diverged"
    );
    // And a different seed genuinely changes the run.
    let c = soak("mixed", 100);
    assert_ne!(
        a.net.obs().trace.dump_jsonl(),
        c.net.obs().trace.dump_jsonl(),
        "different seeds produced identical traces"
    );
}

//! End-to-end integration tests across the whole stack: Bitcoin network →
//! adapters → canister → contracts → back to the Bitcoin network.

use icbtc::canister::{ApiError, CanisterCall, CanisterReply, UtxosFilter};
use icbtc::contracts::{verify_p2wpkh_spend, Wallet};
use icbtc::system::{System, SystemConfig};
use icbtc_bitcoin::{Amount, Script};
use icbtc_btcnet::NodeId;
use icbtc_sim::SimTime;

fn booted_system(seed: u64) -> System {
    let mut system = System::new(SystemConfig::regtest(seed));
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(6000), "initial sync failed");
    system
}

#[test]
fn full_transfer_lifecycle() {
    let mut system = booted_system(100);
    let alice = Wallet::new("alice");
    let bob = Wallet::new("bob");

    system.fund_address(&alice.address(&system), 2);
    assert!(system.sync_canister(6000));
    let subsidy = icbtc_bitcoin::Network::Regtest.params().block_subsidy;
    assert_eq!(alice.balance(&mut system, 0).unwrap().to_sat(), 2 * subsidy.to_sat());

    let bob_address = bob.address(&system);
    let txid = alice
        .transfer(&mut system, &bob_address, Amount::from_btc_int(3), Amount::from_sat(1000))
        .unwrap();
    let height = system.await_transaction_mined(txid, 800).expect("mined");
    assert!(height > 0);
    assert!(system.sync_canister(6000));

    assert_eq!(bob.balance(&mut system, 0).unwrap(), Amount::from_btc_int(3));
    // Alice got her change: 2×subsidy − 3 BTC − fee.
    let expected_change = 2 * subsidy.to_sat() - Amount::from_btc_int(3).to_sat() - 1000;
    assert_eq!(alice.balance(&mut system, 0).unwrap().to_sat(), expected_change);
}

#[test]
fn produced_transactions_verify_as_real_p2wpkh_spends() {
    let mut system = booted_system(101);
    let wallet = Wallet::new("verifier");
    system.fund_address(&wallet.address(&system), 1);
    assert!(system.sync_canister(6000));

    let to = Wallet::new("dest").address(&system);
    let tx = wallet
        .build_signed_transfer(&mut system, &to, Amount::from_btc_int(1), Amount::from_sat(500))
        .unwrap();
    // Validate the witnesses exactly as a Bitcoin node would.
    let own_script = wallet.address(&system).script_pubkey();
    let utxos = wallet.utxos(&mut system).unwrap();
    let spent: Vec<(Amount, Script)> = tx
        .inputs
        .iter()
        .map(|input| {
            let utxo = utxos.iter().find(|u| u.outpoint == input.previous_output).unwrap();
            (utxo.value, own_script.clone())
        })
        .collect();
    assert!(verify_p2wpkh_spend(&tx, &spent), "threshold signatures must verify");

    // A tampered output invalidates every signature.
    let mut tampered = tx.clone();
    tampered.outputs[0].value = Amount::from_sat(tampered.outputs[0].value.to_sat() + 1);
    assert!(!verify_p2wpkh_spend(&tampered, &spent));
}

#[test]
fn confirmations_climb_as_blocks_arrive() {
    let mut system = booted_system(102);
    let wallet = Wallet::new("climber");
    system.fund_address(&wallet.address(&system), 1);
    assert!(system.sync_canister(6000));
    let funded = wallet.balance(&mut system, 0).unwrap();
    assert!(funded > Amount::ZERO);

    // Initially the funding block is the tip: 1 confirmation.
    assert_eq!(wallet.balance(&mut system, 1).unwrap(), funded);
    assert_eq!(wallet.balance(&mut system, 2).unwrap(), Amount::ZERO);

    // Each further block adds one confirmation.
    for expected in 2..=4u32 {
        system
            .btc_mut()
            .mine_block_paying(NodeId(0), Script::new_op_return(b"conf"));
        assert!(system.sync_canister(6000));
        assert_eq!(wallet.balance(&mut system, expected).unwrap(), funded, "at {expected}");
        assert_eq!(wallet.balance(&mut system, expected + 1).unwrap(), Amount::ZERO);
    }

    // Confirmations above δ are rejected outright.
    let delta = system.canister().state().params().stability_delta as u32;
    let outcome = system.query(CanisterCall::GetBalance {
        address: wallet.address(&system),
        min_confirmations: delta + 1,
    });
    assert_eq!(
        outcome.outcome.reply,
        Err(ApiError::MinConfirmationsTooLarge { requested: delta + 1, maximum: delta })
    );
}

#[test]
fn utxo_pagination_via_public_api() {
    let mut system = booted_system(103);
    let wallet = Wallet::new("pager");
    // Fund with many blocks so the address holds many UTXOs.
    system.fund_address(&wallet.address(&system), 8);
    assert!(system.sync_canister(8000));

    let address = wallet.address(&system);
    let first = system.query(CanisterCall::GetUtxos { address, filter: None });
    let Ok(CanisterReply::Utxos(response)) = first.outcome.reply else {
        panic!("utxos query failed");
    };
    assert_eq!(response.utxos.len(), 8);
    // Heights strictly descending.
    for pair in response.utxos.windows(2) {
        assert!(pair[0].height >= pair[1].height);
    }
    assert!(response.next_page.is_none(), "8 UTXOs fit one page");

    // Confirmation filtering matches balances.
    let filtered = system.query(CanisterCall::GetUtxos {
        address,
        filter: Some(UtxosFilter::MinConfirmations(3)),
    });
    let Ok(CanisterReply::Utxos(filtered)) = filtered.outcome.reply else {
        panic!("filtered query failed");
    };
    assert_eq!(filtered.utxos.len(), 6, "two newest blocks excluded at c=3");
}

#[test]
fn fee_percentiles_reflect_recent_transactions() {
    let mut system = booted_system(104);
    let wallet = Wallet::new("feepayer");
    system.fund_address(&wallet.address(&system), 2);
    assert!(system.sync_canister(6000));

    // Submit a transfer with a known fee and mine it.
    let to = Wallet::new("feedest").address(&system);
    let txid = wallet
        .transfer(&mut system, &to, Amount::from_btc_int(1), Amount::from_sat(5000))
        .unwrap();
    system.await_transaction_mined(txid, 800).expect("mined");
    assert!(system.sync_canister(6000));

    let outcome = system.query(CanisterCall::GetFeePercentiles);
    let Ok(CanisterReply::FeePercentiles(percentiles)) = outcome.outcome.reply else {
        panic!("fee percentile query failed");
    };
    assert_eq!(percentiles.len(), 100);
    assert!(percentiles.iter().all(|&p| p > 0), "observed fee rates are positive");
    // Percentiles are non-decreasing.
    for pair in percentiles.windows(2) {
        assert!(pair[0] <= pair[1]);
    }
}

#[test]
fn anchor_trails_tip_by_delta() {
    let mut system = booted_system(105);
    // Grow the chain well past δ.
    for _ in 0..12 {
        system.btc_mut().mine_block_paying(NodeId(0), Script::new_op_return(b"grow"));
    }
    assert!(system.sync_canister(8000));
    let state = system.canister().state();
    let (_, tip) = state.best_tip();
    let anchor = state.anchor_height();
    let delta = state.params().stability_delta;
    // On a fork-free chain a block stabilizes once its depth ≥ δ, so the
    // anchor trails the tip by exactly δ − 1 … δ + τ.
    assert!(
        tip - anchor >= delta - 1 && tip - anchor <= delta + state.params().tau,
        "anchor {anchor}, tip {tip}, delta {delta}"
    );
    // The stable region below the anchor holds no block bodies.
    assert!(state.unstable_block_count() as u64 <= tip - anchor);
}

#[test]
fn replicated_latency_distribution_sane() {
    let mut system = booted_system(106);
    let address = Wallet::new("latency").address(&system);
    let mut latencies = Vec::new();
    for _ in 0..10 {
        let outcome = system.replicated(CanisterCall::GetBalance {
            address,
            min_confirmations: 0,
        });
        latencies.push(outcome.latency.as_secs_f64());
    }
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    assert!((3.0..20.0).contains(&mean), "mean replicated latency {mean}s");
    // Queries are at least an order of magnitude faster.
    let query = system.query(CanisterCall::GetBalance { address, min_confirmations: 0 });
    assert!(query.latency.as_secs_f64() * 5.0 < mean);
}

#[test]
fn send_transaction_rejects_garbage_via_full_stack() {
    let mut system = booted_system(107);
    let outcome = system.replicated(CanisterCall::SendTransaction {
        transaction: vec![0xde, 0xad, 0xbe, 0xef],
    });
    assert_eq!(outcome.outcome.reply, Err(ApiError::MalformedTransaction));
    // Malformed submissions still cost cycles.
    assert!(outcome.outcome.cycles_charged > 0);
}

//! Query-plane invariants: O(page) cursor pagination, the tip-keyed
//! query cache, and batched query rounds.
//!
//! Three properties anchor the query plane:
//!
//! 1. **Pagination is lossless** — stitching pages of any size yields
//!    exactly the full scan, across random UTXO distributions spanning
//!    both the stable index and the unstable overlay.
//! 2. **The cache is invisible** — cache-on and cache-off replies are
//!    identical, and a response computed at a superseded tip is never
//!    served (ingestion invalidates wholesale; stale page tokens are
//!    rejected).
//! 3. **Batched query rounds are deterministic** — same seed, same
//!    results, same latencies.

use icbtc::bitcoin::pow::median_time_past;
use icbtc::bitcoin::{
    merkle_root, Address, AddressKind, Amount, Block, BlockHeader, MerkleRoot, Network, OutPoint,
    Script, Transaction, TxIn, TxOut, Txid,
};
use icbtc::canister::{
    BitcoinCanister, BitcoinCanisterState, CanisterCall, CanisterReply, UtxoSet, UtxosFilter,
    MAX_UTXOS_PER_PAGE,
};
use icbtc::core::{GetSuccessorsResponse, IntegrationParams};
use icbtc::ic::consensus::ConsensusConfig;
use icbtc::ic::{Meter, MeterBreakdown, QueryPlaneConfig, Subnet};
use icbtc::sim::SimRng;

fn addr(tag: u64) -> Address {
    let mut hash = [0u8; 20];
    hash[..8].copy_from_slice(&tag.to_le_bytes());
    Address::new(Network::Regtest, AddressKind::P2wpkh(hash))
}

fn source_outpoint(height: u64, index: u64) -> OutPoint {
    let mut txid = [0u8; 32];
    txid[..8].copy_from_slice(&height.to_le_bytes());
    txid[8..16].copy_from_slice(&index.to_le_bytes());
    txid[31] = 0xab;
    OutPoint::new(Txid(txid), 0)
}

/// Mines a valid PoW block paying `outputs` (besides the coinbase) on
/// top of `prev`.
fn mine_block(
    prev: &mut BlockHeader,
    recent_times: &mut Vec<u32>,
    height: u64,
    outputs: Vec<TxOut>,
    tag: u64,
) -> Block {
    let coinbase = icbtc::bitcoin::builder::coinbase_transaction(
        height,
        Amount::from_btc_int(3),
        Script::new_op_return(b"query-plane"),
        tag,
    );
    let mut txdata = vec![coinbase];
    if !outputs.is_empty() {
        txdata.push(Transaction {
            version: 2,
            inputs: vec![TxIn::new(source_outpoint(30_000 + height, tag))],
            outputs,
            lock_time: 0,
        });
    }
    let mtp = median_time_past(recent_times);
    let mut header = BlockHeader {
        version: 2,
        prev_blockhash: prev.block_hash(),
        merkle_root: merkle_root(&txdata.iter().map(|t| t.txid()).collect::<Vec<_>>()),
        time: mtp + 600,
        bits: Network::Regtest.genesis_block().header.bits,
        nonce: 0,
    };
    while !header.meets_pow_target() {
        header.nonce += 1;
    }
    recent_times.push(header.time);
    *prev = header;
    Block { header, txdata }
}

/// Builds a canister state with `num_addresses` addresses holding random
/// UTXO counts (up to `max_count`) spread over 30 stable heights, plus
/// two unstable blocks paying every address one extra UTXO each.
fn build_state(seed: u64, num_addresses: usize, max_count: u64) -> (BitcoinCanisterState, Vec<Address>) {
    let mut rng = SimRng::seed_from(seed);
    let params = IntegrationParams::for_network(Network::Regtest).with_stability_delta(10);
    let genesis = Network::Regtest.genesis_block().header;

    const HEIGHTS: u64 = 30;
    let mut utxos = UtxoSet::new(Network::Regtest);
    let mut meter = Meter::new();
    let mut breakdown = MeterBreakdown::new();
    utxos.ingest_block(&[], 0, &mut meter, &mut breakdown);

    let mut addresses = Vec::with_capacity(num_addresses);
    let mut per_height: Vec<Vec<TxOut>> = vec![Vec::new(); HEIGHTS as usize];
    for i in 0..num_addresses {
        let address = addr(i as u64);
        addresses.push(address);
        let count = rng.below(max_count) + 1;
        for k in 0..count {
            per_height[((i as u64 + k * 3) % HEIGHTS) as usize]
                .push(TxOut::new(Amount::from_sat(500 + k), address.script_pubkey()));
        }
    }
    for (slot, outputs) in per_height.into_iter().enumerate() {
        let height = slot as u64 + 1;
        let txs: Vec<Transaction> = outputs
            .chunks(1000)
            .enumerate()
            .map(|(i, chunk)| Transaction {
                version: 2,
                inputs: vec![TxIn::new(source_outpoint(height, i as u64))],
                outputs: chunk.to_vec(),
                lock_time: 0,
            })
            .collect();
        utxos.ingest_block(&txs, height, &mut meter, &mut breakdown);
    }

    let mut headers = vec![genesis];
    for height in 1..=HEIGHTS {
        let prev = *headers.last().unwrap();
        headers.push(BlockHeader {
            version: 2,
            prev_blockhash: prev.block_hash(),
            merkle_root: MerkleRoot([height as u8; 32]),
            time: genesis.time + height as u32 * 600,
            bits: genesis.bits,
            nonce: 0,
        });
    }
    let mut state = BitcoinCanisterState::new(params);
    state.install_snapshot(utxos, headers.clone());

    let mut prev = *headers.last().unwrap();
    let mut recent_times: Vec<u32> = headers.iter().map(|h| h.time).collect();
    let blocks: Vec<Block> = (0..2)
        .map(|i| {
            let outputs = addresses
                .iter()
                .map(|a| TxOut::new(Amount::from_sat(800 + i), a.script_pubkey()))
                .collect();
            mine_block(&mut prev, &mut recent_times, HEIGHTS + 1 + i, outputs, i)
        })
        .collect();
    let now_unix = recent_times.last().unwrap() + 60;
    let report = state.process_response(
        GetSuccessorsResponse { blocks, next: Vec::new() },
        now_unix,
        &mut Meter::new(),
    );
    assert_eq!(report.blocks_accepted, 2, "rejected: {:?}", report.rejected);
    assert!(state.is_synced());
    (state, addresses)
}

#[test]
fn stitched_pages_equal_the_full_scan_for_arbitrary_page_sizes() {
    for seed in [1, 2, 3] {
        let (state, addresses) = build_state(seed, 24, 200);
        let mut rng = SimRng::seed_from(seed.wrapping_add(77));
        for address in &addresses {
            let full = state
                .get_utxos_paged(address, None, MAX_UTXOS_PER_PAGE, &mut Meter::new())
                .expect("full scan");
            assert!(full.next_page.is_none(), "test sets must fit one max page");
            assert!(!full.utxos.is_empty());

            // Several page sizes per address, including rng-drawn ones.
            for page_size in [1, 3, 7, 64, 1000, rng.below(97) as usize + 1] {
                let mut stitched = Vec::new();
                let mut filter = None;
                loop {
                    let page = state
                        .get_utxos_paged(address, filter.take(), page_size, &mut Meter::new())
                        .expect("page");
                    assert!(page.utxos.len() <= page_size);
                    assert_eq!(page.tip_block_hash, full.tip_block_hash);
                    assert_eq!(page.tip_height, full.tip_height);
                    stitched.extend(page.utxos);
                    match page.next_page {
                        Some(token) => filter = Some(UtxosFilter::Page(token)),
                        None => break,
                    }
                }
                assert_eq!(
                    stitched, full.utxos,
                    "seed {seed}, page size {page_size}: stitching must be lossless"
                );
            }
        }
    }
}

#[test]
fn cached_and_uncached_replies_are_identical() {
    let (state, addresses) = build_state(9, 16, 120);
    let mut canister = BitcoinCanister::from_state(state);
    let mut calls: Vec<CanisterCall> = Vec::new();
    for address in &addresses {
        calls.push(CanisterCall::GetBalance { address: *address, min_confirmations: 0 });
        calls.push(CanisterCall::GetUtxos { address: *address, filter: None });
        calls.push(CanisterCall::GetBalance { address: *address, min_confirmations: 3 });
    }
    calls.push(CanisterCall::GetFeePercentiles);

    for call in &calls {
        let uncached = canister.query(call, &mut Meter::new());
        let fill = canister.query_cached(call, &mut Meter::new());
        let hit = canister.query_cached(call, &mut Meter::new());
        assert_eq!(fill.reply, uncached.reply, "cache fill must match the uncached reply");
        assert_eq!(hit.reply, uncached.reply, "cache hit must match the uncached reply");
    }
}

/// The tip header plus the recent timestamp window needed to mine a
/// valid successor (median-time-past check).
fn mining_context(state: &BitcoinCanisterState) -> (BlockHeader, Vec<u32>, u64) {
    let (_, tip_height) = state.best_tip();
    let recent_times: Vec<u32> = (tip_height.saturating_sub(12)..=tip_height)
        .filter_map(|h| state.header_at_height(h))
        .map(|h| h.time)
        .collect();
    let prev = state.header_at_height(tip_height).expect("tip header");
    (prev, recent_times, tip_height)
}

#[test]
fn the_cache_never_serves_a_superseded_tip() {
    let (state, addresses) = build_state(11, 4, 20);
    let mut canister = BitcoinCanister::from_state(state);
    let target = addresses[0];
    let call = CanisterCall::GetBalance { address: target, min_confirmations: 0 };

    // Warm the cache.
    let before = canister.query_cached(&call, &mut Meter::new());
    let before_again = canister.query_cached(&call, &mut Meter::new());
    assert_eq!(before.reply, before_again.reply);

    // Ingest a block paying the target address.
    let (mut prev, mut recent_times, tip_height) = mining_context(canister.state());
    let block = mine_block(
        &mut prev,
        &mut recent_times,
        tip_height + 1,
        vec![TxOut::new(Amount::from_sat(123_456), target.script_pubkey())],
        99,
    );
    let now_unix = recent_times.last().unwrap() + 60;
    let mut meter = Meter::new();
    let mut ctx = icbtc::ic::ExecutionContext {
        meter: &mut meter,
        now: icbtc::sim::SimTime::ZERO,
        round: 1,
    };
    let report = canister.ingest_response(
        GetSuccessorsResponse { blocks: vec![block], next: Vec::new() },
        now_unix,
        &mut ctx,
    );
    assert_eq!(report.blocks_accepted, 1, "rejected: {:?}", report.rejected);

    // The cached path must now reflect the new tip, not the old reply.
    let after = canister.query_cached(&call, &mut Meter::new());
    let reference = canister.query(&call, &mut Meter::new());
    assert_eq!(after.reply, reference.reply, "cache must track the tip");
    match (&before.reply, &after.reply) {
        (Ok(CanisterReply::Balance(old)), Ok(CanisterReply::Balance(new))) => {
            let expected: Amount =
                [old.balance, Amount::from_sat(123_456)].into_iter().sum();
            assert_eq!(new.balance, expected, "new balance includes the ingested payment");
        }
        other => panic!("unexpected replies: {other:?}"),
    }

    // A page token minted at the old tip is rejected, not silently wrong.
    let first_page = canister.query(
        &CanisterCall::GetUtxos { address: target, filter: None },
        &mut Meter::new(),
    );
    let token = match first_page.reply {
        Ok(CanisterReply::Utxos(r)) => r.next_page,
        other => panic!("unexpected reply: {other:?}"),
    };
    // The set is small, so there is no continuation to replay — craft a
    // stale token instead by querying pre-ingest state separately below.
    assert!(token.is_none());
}

#[test]
fn stale_page_tokens_from_an_old_tip_are_rejected() {
    let (state, addresses) = build_state(13, 2, 60);
    let target = addresses[0];
    let mut canister = BitcoinCanister::from_state(state);

    // Mint a continuation token at the current tip.
    let page = canister
        .state()
        .get_utxos_paged(&target, None, 2, &mut Meter::new())
        .expect("first page");
    let token = page.next_page.expect("more than one page");

    // Advance the tip by one block.
    let (mut prev, mut recent_times, tip_height) = mining_context(canister.state());
    assert_eq!(tip_height, page.tip_height);
    let block = mine_block(&mut prev, &mut recent_times, tip_height + 1, Vec::new(), 7);
    let now_unix = recent_times.last().unwrap() + 60;
    let report = canister.state_mut().process_response(
        GetSuccessorsResponse { blocks: vec![block], next: Vec::new() },
        now_unix,
        &mut Meter::new(),
    );
    assert_eq!(report.blocks_accepted, 1, "rejected: {:?}", report.rejected);

    let outcome = canister.query(
        &CanisterCall::GetUtxos { address: target, filter: Some(UtxosFilter::Page(token)) },
        &mut Meter::new(),
    );
    assert_eq!(
        outcome.reply,
        Err(icbtc::canister::ApiError::MalformedPage),
        "a token minted at a superseded tip must be rejected"
    );
}

#[test]
fn batched_query_rounds_are_deterministic_at_the_facade() {
    let run = |seed: u64| {
        let (state, addresses) = build_state(17, 8, 40);
        let canister = BitcoinCanister::from_state(state);
        let mut subnet = Subnet::new(canister, ConsensusConfig::thirteen_replicas(), seed);
        subnet.set_query_plane(QueryPlaneConfig { max_per_round: 8, concurrency: 2 });
        let mut rng = SimRng::seed_from(seed.wrapping_add(5));
        for _ in 0..40 {
            let address = addresses[rng.index(addresses.len())];
            let call = if rng.chance(0.5) {
                CanisterCall::GetBalance { address, min_confirmations: 0 }
            } else {
                CanisterCall::GetUtxos { address, filter: None }
            };
            subnet.submit_query(call);
        }
        let mut out = Vec::new();
        let mut rounds = 0;
        while subnet.completed_queries() < 40 {
            let report = subnet.execute_round(|_, _| {});
            assert!(report.query_results.len() <= 8, "per-round bound violated");
            out.extend(report.query_results.into_iter().map(|r| {
                (r.id, r.instructions, r.responded_at, format!("{:?}", r.output.reply))
            }));
            rounds += 1;
            assert!(rounds < 1000, "query plane starved");
        }
        out
    };
    assert_eq!(run(23), run(23), "same-seed batched query rounds must be byte-identical");
}

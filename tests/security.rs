//! Integration tests for the paper's security arguments (§IV-A):
//! eclipse resistance (Lemma IV.1), fork racing (Lemma IV.2), and
//! post-downtime injection (Lemma IV.3). The full Monte-Carlo sweeps live
//! in the bench harness; these tests check the mechanisms at small scale.

use icbtc::adapter::eclipse_probability;
use icbtc::btcnet::adversary::{mining_race, SecretForkMiner};
use icbtc::btcnet::NodeId;
use icbtc::contracts::Wallet;
use icbtc::system::{DowntimeAttack, System, SystemConfig};
use icbtc_bitcoin::{Amount, Script};
use icbtc_sim::{SimDuration, SimRng, SimTime};

fn booted(seed: u64, byzantine: usize) -> System {
    let mut config = SystemConfig::regtest(seed);
    config.consensus.byzantine = byzantine;
    let mut system = System::new(config);
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(8000), "initial sync failed");
    system
}

// ---------------------------------------------------------------------
// Lemma IV.1: eclipse resistance
// ---------------------------------------------------------------------

#[test]
fn lemma_iv1_eclipse_probability_closed_form_vs_monte_carlo() {
    // Empirically eclipse a simulated adapter population and compare
    // against the closed form 1 − (1 − φ^ℓ)^n.
    let mut rng = SimRng::seed_from(9);
    let total_nodes = 200usize;
    let (n, l) = (13usize, 3usize);
    for corrupted_fraction in [0.2f64, 0.5] {
        let corrupted = (total_nodes as f64 * corrupted_fraction) as usize;
        let trials = 4000;
        let mut eclipsed_any = 0;
        for _ in 0..trials {
            let mut any = false;
            for _ in 0..n {
                let picks = rng.sample_indices(total_nodes, l);
                if picks.iter().all(|&p| p < corrupted) {
                    any = true;
                }
            }
            if any {
                eclipsed_any += 1;
            }
        }
        let measured = eclipsed_any as f64 / trials as f64;
        let predicted = eclipse_probability(corrupted_fraction, l, n);
        assert!(
            (measured - predicted).abs() < 0.05,
            "phi={corrupted_fraction}: measured {measured} vs predicted {predicted}"
        );
    }
}

#[test]
fn lemma_iv1_practical_parameters_keep_eclipse_negligible() {
    // n = 13, ℓ = 5: the paper's requirement is φ ≪ 0.6.
    assert!(eclipse_probability(0.1, 5, 13) < 1e-3);
    assert!(eclipse_probability(0.3, 5, 13) < 0.05);
    // Scaling ℓ with log n keeps the bound for larger subnets.
    assert!(eclipse_probability(0.3, 8, 40) < eclipse_probability(0.3, 5, 13));
}

#[test]
fn adapter_with_one_honest_connection_still_syncs() {
    // "The Bitcoin canister makes progress as long as at least one
    // adapter is connected to at least one correct node."
    let mut system = booted(11, 0);
    let before = system.canister().state().best_tip().1;
    for _ in 0..3 {
        system.btc_mut().mine_block_paying(NodeId(0), Script::new_op_return(b"x"));
    }
    assert!(system.sync_canister(8000));
    assert_eq!(system.canister().state().best_tip().1, before + 3);
}

// ---------------------------------------------------------------------
// Lemma IV.2: fork racing / state corruption
// ---------------------------------------------------------------------

#[test]
fn lemma_iv2_minority_attacker_rarely_outpaces() {
    let mut rng = SimRng::seed_from(21);
    // At α = 25% hash power over 300-block windows, a lead of 10 blocks
    // is already very unlikely; a lead of 144 (the production δ) never
    // happens at this scale.
    let trials = 400;
    let mut lead_10 = 0;
    for _ in 0..trials {
        let (_, max_lead) = mining_race(0.25, 300, &mut rng);
        if max_lead >= 10 {
            lead_10 += 1;
        }
        assert!(max_lead < 144, "a minority attacker must never reach δ = 144");
    }
    assert!(
        (lead_10 as f64 / trials as f64) < 0.02,
        "lead ≥ 10 happened in {lead_10}/{trials} races"
    );
}

#[test]
fn lemma_iv2_canister_ignores_lower_work_fork() {
    let mut system = booted(22, 0);
    let victim = Wallet::new("victim");
    system.fund_address(&victim.address(&system), 1);
    for _ in 0..3 {
        system.btc_mut().mine_block_paying(NodeId(0), Script::new_op_return(b"h"));
    }
    assert!(system.sync_canister(8000));
    let funded = victim.balance(&mut system, 0).unwrap();
    assert!(funded > Amount::ZERO);
    let tip_before = system.canister().state().best_tip();

    // Attacker injects a 2-block fork branching 4 blocks back: less
    // accumulated work than the current chain.
    let view = system.btc().node(NodeId(0)).chain().clone();
    let branch = view.best_chain_hash_at(view.tip_height() - 4).unwrap();
    let mut fork = SecretForkMiner::branch_at(&view, branch).unwrap();
    for block in fork.extend(2, 5) {
        system.btc_mut().submit_block(NodeId(1), block);
    }
    assert!(system.sync_canister(8000));

    // The canister's best chain is unchanged and the balance intact.
    assert_eq!(system.canister().state().best_tip(), tip_before);
    assert_eq!(victim.balance(&mut system, 0).unwrap(), funded);
}

#[test]
fn lemma_iv2_competing_fork_suppresses_confirmations() {
    // The heart of the lemma's proof: if the attacker's chain is shorter
    // than height + c*, stability keeps the victim's confirmations below
    // c*; no state corruption can be observed through the API.
    // Large δ keeps the anchor at genesis so the fork's branch point
    // stays above it regardless of how long syncing takes.
    let mut config = SystemConfig::regtest(23);
    config.params = config.params.with_stability_delta(50);
    let mut system = System::new(config);
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(8000), "initial sync failed");
    let merchant = Wallet::new("m");
    system.fund_address(&merchant.address(&system), 1);
    assert!(system.sync_canister(8000));
    let funded = merchant.balance(&mut system, 0).unwrap();
    let fund_height = system.canister().state().best_tip().1;

    // Grow honest chain by 3; attacker fork of length 3 branching at the
    // funding block's parent.
    let view = system.btc().node(NodeId(0)).chain().clone();
    let branch = view.best_chain_hash_at(fund_height - 1).unwrap();
    let mut fork = SecretForkMiner::branch_at(&view, branch).unwrap();
    for _ in 0..3 {
        system.btc_mut().mine_block_paying(NodeId(0), Script::new_op_return(b"h"));
    }
    for block in fork.extend(3, 50) {
        system.btc_mut().submit_block(NodeId(2), block);
    }
    assert!(system.sync_canister(8000));
    // `sync_canister` returns as soon as the best chain is caught up;
    // give the losing fork time to propagate into the canister's tree.
    system.run_rounds(60);
    assert!(
        system.canister().state().tree().len() as u64
            > system.canister().state().best_tip().1 + 1,
        "the fork must be present in the canister's header tree"
    );

    // Definition II.1: the funding block's stability is capped at
    // depth − fork_depth, while its plain depth keeps growing (the
    // Poisson process may add blocks while syncing, so compute depth from
    // the observed tip).
    let (_, tip) = system.canister().state().best_tip();
    let depth = tip - fund_height + 1;
    let stability = (depth - 3) as u32; // fork depth is 3
    assert!(stability >= 1, "honest chain must be ahead of the fork");
    assert!(
        (stability as u64) < depth,
        "the fork must cost confirmations: stability {stability} vs depth {depth}"
    );
    assert_eq!(merchant.balance(&mut system, stability).unwrap(), funded);
    assert_eq!(merchant.balance(&mut system, stability + 1).unwrap(), Amount::ZERO);
}

// ---------------------------------------------------------------------
// Lemma IV.3: post-downtime injection
// ---------------------------------------------------------------------

#[test]
fn lemma_iv3_honest_makers_defeat_injection() {
    let mut system = booted(31, 4); // f = 4 of n = 13
    let view = system.btc().node(NodeId(0)).chain().clone();
    let mut fork = SecretForkMiner::branch_at(&view, view.tip_hash()).unwrap();
    let fork_blocks = fork.extend(5, 3);

    system.stall_subnet(SimDuration::from_secs(3600));
    system.set_downtime_attack(DowntimeAttack::new(fork_blocks));
    assert!(system.sync_canister(8000));
    system.clear_downtime_attack();

    let (tip_hash, tip_height) = system.canister().state().best_tip();
    assert_eq!(tip_height, system.btc().best_height());
    // The canister's tip is on the real chain, not the attacker's fork.
    let real_chain = system.btc().node(NodeId(0)).chain().clone();
    assert_eq!(real_chain.best_chain_hash_at(tip_height), Some(tip_hash));
}

#[test]
fn lemma_iv3_consecutive_byzantine_maker_probability() {
    // The bound 3^{-c*}: measure how often f/n < 1/3 Byzantine replicas
    // win c* = 3 consecutive block-maker slots.
    use icbtc::ic::consensus::{ConsensusConfig, ConsensusEngine};
    let mut config = ConsensusConfig::thirteen_replicas();
    config.byzantine = 4;
    let mut engine = ConsensusEngine::new(config, 77);
    let c_star = 3;
    let rounds = 60_000;
    let mut streak = 0u32;
    let mut wins = 0u64;
    for _ in 0..rounds {
        if engine.next_round().maker_is_byzantine {
            streak += 1;
            if streak == c_star {
                wins += 1;
                streak = 0;
            }
        } else {
            streak = 0;
        }
    }
    let rate = wins as f64 / rounds as f64;
    let bound = (1.0f64 / 3.0).powi(c_star as i32);
    // (4/13)^3 ≈ 0.029 per 3-round window; comfortably under 3^{-3}.
    assert!(rate < bound, "streak rate {rate} must stay below 3^-{c_star} = {bound}");
    assert!(rate > 0.0, "streaks must occur at all (f > 0)");
}
